"""Paired verification of the stack refactor (acceptance criterion).

The composed :class:`~repro.core.protocol.FrugalPubSub` and the three
flooding baselines must be **bit-identical** to the frozen pre-stack
monoliths in :mod:`repro.baselines.reference` — same RNG draw order,
same timer ordering, same summaries to the last float — across the
fig11 (random waypoint), fig14 (city section) and fig17 (frugality
comparison) scenario families plus the energy-lifetime and
rwp-churn-faults instrumentations, and across all three execution
paths: serial, ``--jobs 4``, and cached runs, all byte-equal.

This is the same standard PR 3 met for the spatial medium (grid vs flat
scan) and PR 4 for fault instrumentation (empty config vs none): the
old implementation stays in-tree, registered under a hidden
``legacy-*`` name, and every family runs both.
"""

from __future__ import annotations

import json

import pytest

from repro.energy import DutyCycleConfig, EnergyConfig, PowerProfile
from repro.faults import (ChurnConfig, FaultConfig, FaultEvent, FaultPlan,
                          LinkLossConfig, RegionalOutage)
from repro.harness.cache import ResultCache
from repro.harness.parallel import ParallelRunner
from repro.harness.scenario import (CitySectionSpec, Publication,
                                    RandomWaypointSpec, ScenarioConfig)
from repro.net import RadioConfig

SEEDS = [0, 1]

#: Composed protocol name -> frozen pre-stack reference name.
LEGACY = {
    "frugal": "legacy-frugal",
    "simple-flooding": "legacy-simple-flooding",
    "interest-flooding": "legacy-interest-flooding",
    "neighbor-flooding": "legacy-neighbor-flooding",
}


def _rwp(protocol: str) -> ScenarioConfig:
    """The fig11/fig17 random-waypoint family, shrunk for the suite."""
    return ScenarioConfig(
        n_processes=8,
        mobility=RandomWaypointSpec(width=900.0, height=900.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=35.0, warmup=4.0,
        protocol=protocol,
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=28.0),
                      Publication(at=5.0, validity=28.0, publisher=1)))


def _city(protocol: str) -> ScenarioConfig:
    """The fig14 city-section family, shrunk for the suite."""
    return ScenarioConfig(
        n_processes=6,
        mobility=CitySectionSpec(),
        duration=28.0, warmup=5.0,
        protocol=protocol,
        radio=RadioConfig.paper_city_section(),
        subscriber_fraction=0.6,
        publications=(Publication(at=2.0, validity=22.0),))


def _energy(protocol: str) -> ScenarioConfig:
    """The energy-lifetime family: finite batteries + duty cycling."""
    return _rwp(protocol).with_changes(energy=EnergyConfig(
        profile=PowerProfile.power_save(),
        battery_capacity_j=30.0,
        duty_cycle=DutyCycleConfig.heartbeat_aligned(1.0, 0.5)))


def _faults(protocol: str) -> ScenarioConfig:
    """The rwp-churn-faults family: plan + churn + outage + loss."""
    return _rwp(protocol).with_changes(faults=FaultConfig(
        plan=FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.25,
                                   duration=10.0),)),
        churn=ChurnConfig(mean_session_s=15.0, mean_rest_s=5.0,
                          fraction=0.5),
        outages=(RegionalOutage(at=8.0, duration=6.0,
                                center=(450.0, 450.0), radius_m=250.0),),
        loss=LinkLossConfig(link_loss_min=0.05, link_loss_max=0.15,
                            burst_rate_per_s=0.05,
                            burst_mean_duration_s=2.0,
                            burst_loss_probability=0.8)))


#: (family, protocol) -> the composed-protocol config.  Every family the
#: acceptance criterion names, with every refactored protocol where the
#: family compares protocols (fig17) and the family's canonical
#: protocols elsewhere.
PAIRS = {
    ("fig11-rwp", "frugal"): _rwp("frugal"),
    ("fig14-city", "frugal"): _city("frugal"),
    ("fig17-frugality", "frugal"): _rwp("frugal").with_changes(
        subscriber_fraction=0.6),
    ("fig17-frugality", "simple-flooding"): _rwp("simple-flooding"),
    ("fig17-frugality", "interest-flooding"): _rwp("interest-flooding"),
    ("fig17-frugality", "neighbor-flooding"): _rwp("neighbor-flooding"),
    ("energy-lifetime", "frugal"): _energy("frugal"),
    ("energy-lifetime", "neighbor-flooding"): _energy("neighbor-flooding"),
    ("rwp-churn-faults", "frugal"): _faults("frugal"),
    ("rwp-churn-faults", "simple-flooding"): _faults("simple-flooding"),
    ("rwp-churn-faults", "interest-flooding"): _faults("interest-flooding"),
}

PAIR_IDS = [f"{family}-{proto}" for family, proto in PAIRS]


def summaries_bytes(multi) -> bytes:
    """A byte-exact fingerprint of every per-seed summary."""
    return json.dumps([r.summary() for r in multi.results],
                      sort_keys=True).encode()


@pytest.fixture(scope="module")
def pool():
    """One jobs-4 spawn pool for the whole module (workers cost seconds)."""
    with ParallelRunner(jobs=4) as runner:
        yield runner


@pytest.fixture(scope="module")
def serial_results():
    """Serial runs of every pair, shared across the test classes."""
    runner = ParallelRunner(jobs=1)
    out = {}
    for (family, proto), config in PAIRS.items():
        legacy = config.with_changes(protocol=LEGACY[proto])
        out[(family, proto)] = (runner.run_seeds(config, SEEDS),
                                runner.run_seeds(legacy, SEEDS))
    return out


class TestComposedEqualsLegacy:
    @pytest.mark.parametrize("key", list(PAIRS), ids=PAIR_IDS)
    def test_serial_bit_identical(self, key, serial_results):
        composed, legacy = serial_results[key]
        for ours, theirs in zip(composed.results, legacy.results):
            # Exact float equality — the refactor contract.
            assert ours.summary() == theirs.summary()
            assert ours.sim_events_processed == theirs.sim_events_processed
            assert ours.subscriber_ids == theirs.subscriber_ids
            assert ours.per_event_reports() == theirs.per_event_reports()
            # The unified counters agree too: the layers tally exactly
            # what the monolith's inline counters tallied.
            assert ours.protocol_counters() == theirs.protocol_counters()
        assert summaries_bytes(composed) == summaries_bytes(legacy)

    @pytest.mark.parametrize("key", list(PAIRS), ids=PAIR_IDS)
    def test_jobs4_byte_equal(self, key, serial_results, pool):
        composed_serial, legacy_serial = serial_results[key]
        fanned = pool.run_seeds(PAIRS[key], SEEDS)
        assert summaries_bytes(fanned) == summaries_bytes(composed_serial)
        assert summaries_bytes(fanned) == summaries_bytes(legacy_serial)

    @pytest.mark.parametrize("key", list(PAIRS), ids=PAIR_IDS)
    def test_cached_byte_equal(self, key, serial_results, tmp_path):
        composed_serial, legacy_serial = serial_results[key]
        cache = ResultCache(tmp_path / "cache")
        warm = ParallelRunner(jobs=1, cache=cache)
        first = warm.run_seeds(PAIRS[key], SEEDS)
        replay = ParallelRunner(jobs=1, cache=cache)
        second = replay.run_seeds(PAIRS[key], SEEDS)
        assert replay.stats.executed == 0, \
            "rerun must answer every cell from the cache"
        assert summaries_bytes(first) == summaries_bytes(composed_serial)
        assert summaries_bytes(second) == summaries_bytes(composed_serial)
        assert summaries_bytes(second) == summaries_bytes(legacy_serial)


class TestLegacyEntriesStayHidden:
    def test_hidden_from_sweeps_valid_in_configs(self):
        from repro.core import registry
        names = registry.names()
        for legacy_name in LEGACY.values():
            assert legacy_name not in names
            assert legacy_name in registry.names(include_hidden=True)
            # Still a perfectly valid config (the harness can run it).
            _rwp("frugal").with_changes(protocol=legacy_name)
