"""The protocol registry (repro.core.registry).

Registration semantics (duplicates, replace, hidden entries, unknown
names) plus the end-to-end property that makes the registry useful: a
custom protocol composed from the stack layers runs through the full
scenario harness by name.
"""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.base import PubSubProtocol
from repro.core.registry import ProtocolRegistry
from repro.core.stack import DeliveryLayer, EventStore, GossipForwarding
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, make_protocol,
                                    run_scenario)
from repro.net.messages import EventBatch


class _Noop(PubSubProtocol):
    """A do-nothing protocol for registration tests."""

    def subscribe(self, topic):
        pass

    def unsubscribe(self, topic):
        pass

    def publish(self, event):
        pass

    @property
    def subscriptions(self):
        return frozenset()

    def on_message(self, message):
        pass


class TestRegistrySemantics:
    def test_register_get_create(self):
        reg = ProtocolRegistry()
        entry = reg.register("noop", lambda c: _Noop(), description="nothing")
        assert reg.get("noop") is entry
        assert isinstance(reg.create("noop", config=None), _Noop)
        assert reg.names() == ["noop"]
        assert "noop" in reg and len(reg) == 1

    def test_duplicate_requires_replace(self):
        reg = ProtocolRegistry()
        reg.register("noop", lambda c: _Noop())
        with pytest.raises(ValueError, match="already registered"):
            reg.register("noop", lambda c: _Noop())
        reg.register("noop", lambda c: _Noop(), replace=True)

    def test_unknown_name_lists_known(self):
        reg = ProtocolRegistry()
        reg.register("noop", lambda c: _Noop())
        with pytest.raises(ValueError, match="noop"):
            reg.get("missing")

    def test_hidden_entries_excluded_from_names(self):
        reg = ProtocolRegistry()
        reg.register("visible", lambda c: _Noop())
        reg.register("secret", lambda c: _Noop(), hidden=True)
        assert reg.names() == ["visible"]
        assert reg.names(include_hidden=True) == ["secret", "visible"]
        assert [e.name for e in reg.entries()] == ["visible"]

    def test_unregister(self):
        reg = ProtocolRegistry()
        reg.register("noop", lambda c: _Noop())
        reg.unregister("noop")
        assert "noop" not in reg
        with pytest.raises(ValueError, match="not registered"):
            reg.unregister("noop")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ProtocolRegistry().register("", lambda c: _Noop())

    def test_builtins_are_registered(self):
        names = registry.names()
        for expected in ("frugal", "simple-flooding", "interest-flooding",
                         "neighbor-flooding", "gossip-flooding",
                         "counter-flooding", "gossip"):
            assert expected in names


class _BlindGossip(PubSubProtocol):
    """A minimal custom composition: delivery + FIFO buffer + gossip."""

    def __init__(self, probability: float):
        super().__init__()
        self.delivery = DeliveryLayer(self.counters)
        self.buffer = EventStore.bounded_fifo(16)
        self.forwarding = GossipForwarding(self.counters, period=1.0,
                                           jitter=0.05,
                                           forward_probability=probability,
                                           fanout=4)
        self._running = False

    def attach(self, host):
        super().attach(host)
        self.delivery.attach(host)
        self.forwarding.attach(host, self.buffer)

    def on_start(self):
        self._running = True
        self.forwarding.start()

    def on_stop(self):
        self._running = False
        self.forwarding.stop()
        self.buffer.clear()
        self.delivery.reset()

    @property
    def subscriptions(self):
        return self.delivery.subscriptions

    def subscribe(self, topic):
        self.delivery.subscribe(topic)

    def unsubscribe(self, topic):
        self.delivery.unsubscribe(topic)

    def publish(self, event):
        host = self._require_attached()
        self.buffer.store(event, host.now)
        self.delivery.deliver_once(event)
        self.forwarding.broadcast((event,))

    def on_message(self, message):
        if not self._running or not isinstance(message, EventBatch):
            return
        now = self.host.now
        for event in message.events:
            if event.event_id in self.buffer or not event.is_valid(now):
                continue
            self.buffer.store(event, now)
            self.delivery.deliver_once(event)


class TestCustomProtocolThroughHarness:
    def test_registered_composition_runs_by_name(self):
        registry.register("test-blind-gossip",
                          lambda c: _BlindGossip(c.gossip_probability),
                          description="test-only custom stack",
                          replace=True)
        try:
            config = ScenarioConfig(
                n_processes=6,
                mobility=RandomWaypointSpec(width=700.0, height=700.0,
                                            speed_min=10.0, speed_max=10.0),
                duration=25.0, warmup=2.0,
                protocol="test-blind-gossip",
                gossip_probability=0.9,
                subscriber_fraction=0.8,
                publications=(Publication(at=2.0, validity=20.0),))
            assert isinstance(make_protocol(config), _BlindGossip)
            result = run_scenario(config)
            assert result.reliability() > 0.0
            assert result.protocol_counters().batches_sent > 0
        finally:
            registry.unregister("test-blind-gossip")

    def test_unregistered_name_rejected_by_config(self):
        with pytest.raises(ValueError, match="protocol"):
            ScenarioConfig(
                n_processes=2,
                mobility=RandomWaypointSpec(width=100.0, height=100.0,
                                            speed_min=1.0, speed_max=1.0),
                duration=5.0, protocol="test-blind-gossip")
