"""Tests for the per-figure experiment functions (repro.harness.experiments).

These run miniature versions of each experiment — a dedicated `tiny`
scale far smaller than `quick` — to verify the sweep structure, row
schemas and the qualitative trends the benchmarks rely on.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import (ALL_EXPERIMENTS, CHURN_PROTOCOLS,
                                       ablation_backoff, ablation_gc,
                                       ablation_heartbeat, ablation_ids,
                                       ablation_outage, churn_resilience,
                                       churn_scenario, city_scenario,
                                       fig11, fig13, fig15,
                                       frugality_comparison, rwp_scenario)
from repro.harness.presets import PAPER, QUICK, SMOKE, Scale, get_scale

TINY = Scale(
    name="tiny",
    rwp_processes=10, rwp_area_m=1200.0, rwp_warmup=10.0,
    city_processes=6, city_warmup=10.0, city_publisher_rotations=2,
    seeds=2, sweep_density="coarse",
)


class TestPresets:
    def test_registry(self):
        assert get_scale("quick") is QUICK
        assert get_scale("paper") is PAPER
        assert get_scale("smoke") is SMOKE
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is PAPER
        monkeypatch.delenv("REPRO_SCALE")
        assert get_scale() is QUICK

    def test_pick_by_density(self):
        assert QUICK.pick([1, 2, 3], [1, 3]) == [1, 3]
        assert PAPER.pick([1, 2, 3], [1, 3]) == [1, 2, 3]

    def test_seed_list(self):
        assert TINY.seed_list() == [0, 1]
        assert TINY.seed_list(base=10) == [10, 11]


class TestScenarioBuilders:
    def test_rwp_scenario_duration_covers_validity(self):
        cfg = rwp_scenario(TINY, 10.0, 10.0, validity=50.0, interest=0.5)
        pub = cfg.publications[0]
        assert cfg.duration >= pub.at + pub.validity

    def test_rwp_scenario_zero_speed_is_stationary(self):
        from repro.harness.scenario import StationarySpec
        cfg = rwp_scenario(TINY, 0.0, 0.0, validity=30.0, interest=0.5)
        assert isinstance(cfg.mobility, StationarySpec)

    def test_rwp_multi_event_publishers_rotate(self):
        cfg = rwp_scenario(TINY, 10.0, 10.0, validity=30.0, interest=1.0,
                           n_events=3)
        assert [p.publisher for p in cfg.publications] == [0, 1, 2]

    def test_city_scenario_uses_urban_radio(self):
        cfg = city_scenario(TINY, validity=60.0, interest=1.0)
        assert cfg.radio.communication_range_m() == 44.0
        assert cfg.n_processes == TINY.city_processes

    def test_city_scenario_hb_bound_plumbs_through(self):
        cfg = city_scenario(TINY, validity=60.0, interest=1.0, hb_upper=3.0)
        assert cfg.frugal.hb_upper_bound == 3.0


class TestReliabilityExperiments:
    def test_fig11_rows_cover_sweep(self):
        result = fig11(TINY)
        assert result.experiment_id == "fig11"
        speeds = set(result.column("speed"))
        assert speeds == set(TINY.pick([0.0, 1.0, 5.0, 10.0, 20.0, 30.0,
                                        40.0], [0.0, 5.0, 10.0, 30.0]))
        interests = set(result.column("interest"))
        assert interests == {0.2, 0.8}
        for row in result.rows:
            assert 0.0 <= row["reliability"] <= 1.0

    def test_fig11_more_subscribers_not_worse(self):
        """The paper's headline: 80% interest reaches far higher
        reliability than 20% at equal speed/validity (sparse networks
        fail)."""
        result = fig11(TINY)
        high = [r["reliability"] for r in result.filter(interest=0.8)]
        low = [r["reliability"] for r in result.filter(interest=0.2)]
        assert sum(high) / len(high) >= sum(low) / len(low)

    def test_fig13_row_schema(self):
        result = fig13(TINY)
        assert set(result.column("hb_upper")) == {1.0, 3.0, 5.0}
        assert all("reliability" in row for row in result.rows)

    def test_fig15_spread_is_max_minus_min(self):
        result = fig15(TINY)
        for row in result.rows:
            assert row["spread"] == pytest.approx(
                row["best"] - row["worst"])
            assert 0.0 <= row["spread"] <= 1.0


class TestFrugalityExperiments:
    def test_comparison_runs_all_protocols(self):
        result = frugality_comparison(
            TINY, protocols=("frugal", "simple-flooding"))
        assert set(r["protocol"] for r in result.rows) == \
            {"frugal", "simple-flooding"}

    def test_frugal_beats_flooding_on_all_four_metrics(self):
        """The paper's core claim, at any scale."""
        result = frugality_comparison(
            TINY, protocols=("frugal", "simple-flooding"))
        frugal = result.filter(protocol="frugal", events=20, interest=1.0)[0]
        flood = result.filter(protocol="simple-flooding", events=20,
                              interest=1.0)[0]
        assert frugal["bandwidth_bytes"] < flood["bandwidth_bytes"]
        assert frugal["events_sent"] < flood["events_sent"]
        assert frugal["duplicates"] < flood["duplicates"]
        assert frugal["parasites"] <= flood["parasites"]


class TestAblations:
    def test_gc_ablation_covers_all_policies(self):
        result = ablation_gc(TINY, capacity=4)
        assert set(result.column("policy")) == {
            "validity-forward", "remaining-validity", "fifo", "random"}

    def test_backoff_ablation_variants(self):
        result = ablation_backoff(TINY)
        variants = set(result.column("variant"))
        assert variants == {"backoff+suppression", "no-suppression",
                            "no-backoff"}

    def test_heartbeat_ablation_shape(self):
        result = ablation_heartbeat(TINY)
        assert len(result.rows) == 6      # 2 variants x 3 speeds

    def test_ids_ablation_shape(self):
        result = ablation_ids(TINY)
        assert [r["id_exchange"] for r in result.rows] == [True, False]


class TestChurnExperiments:
    def test_churn_scenario_none_is_instrumented_noop(self):
        cfg = churn_scenario(TINY, "frugal", None)
        assert cfg.faults is not None
        assert cfg.faults.churn is None and not cfg.faults.plan.events

    def test_churn_resilience_shape_and_trends(self):
        result = churn_resilience(TINY)
        rates = sorted({r["churn_per_min"] for r in result.rows})
        assert rates[0] == 0.0 and len(rates) == 3
        assert {r["protocol"] for r in result.rows} == set(CHURN_PROTOCOLS)
        for row in result.rows:
            # Churn-aware denominators only remove unservable nodes.
            assert row["churn_reliability"] >= row["reliability"] - 1e-12
            if row["churn_per_min"] == 0.0:
                assert row["availability"] == 1.0
                assert row["downtime_s"] == 0.0
            else:
                assert row["availability"] < 1.0
                assert row["downtime_s"] > 0.0

    def test_protocol_matrix_covers_every_visible_protocol(self):
        from repro.core import registry
        from repro.harness.experiments import protocol_matrix
        result = protocol_matrix(TINY)
        measured = {r["protocol"] for r in result.rows}
        assert measured == set(registry.names())
        assert "gossip" in measured                    # the new baseline
        assert "legacy-frugal" not in measured         # hidden stays out
        rates = sorted({r["churn_per_min"] for r in result.rows})
        assert rates[0] == 0.0 and len(rates) == 3
        for row in result.rows:
            assert 0.0 <= row["reliability"] <= 1.0
            assert row["churn_reliability"] >= row["reliability"] - 1e-12

    def test_outage_ablation_shape(self):
        result = ablation_outage(TINY)
        kinds = [r["outage"] for r in result.rows]
        assert kinds[0] == "none"
        assert set(kinds) == {"none", "silence", "crash"}
        for row in result.rows:
            if row["outage"] == "none":
                assert row["availability"] == 1.0
            else:
                assert row["availability"] < 1.0


class TestRegistry:
    def test_all_figures_and_ablations_registered(self):
        expected = {f"fig{i}" for i in range(11, 21)} | {
            "abl-gc", "abl-backoff", "abl-adaptive-hb", "abl-ids",
            "abl-dutycycle", "abl-outage", "related-work",
            "energy-lifetime", "churn-resilience", "protocol-matrix",
            "loopback-bridge", "city-scale", "study-frontier"}
        assert set(ALL_EXPERIMENTS) == expected
