"""Tests for the asyncio Host implementation (repro.rt.host).

Drives :class:`AsyncioHost` with a scripted fake protocol and a fake
transport — no real sockets — to pin down the handle contracts the stack
layers rely on (``.cancel()``/``.active``, ``.stop()``/``.set_period()``/
``.running``), the crash/silence fault semantics mirrored from the sim
node, and the virtual-time scaling.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.base import PubSubProtocol
from repro.core.events import Event, EventId
from repro.core.topics import Topic
from repro.net.messages import Heartbeat
from repro.rt.codec import encode
from repro.rt.host import AsyncioHost

#: High compression so multi-virtual-second waits finish in milliseconds.
SCALE = 200.0


class ScriptedProtocol(PubSubProtocol):
    """Minimal concrete protocol recording its lifecycle and messages."""

    def __init__(self):
        super().__init__()
        self.started = 0
        self.stopped = 0
        self.messages = []

    def on_start(self):
        self.started += 1

    def on_stop(self):
        self.stopped += 1

    def subscribe(self, topic):
        pass

    def unsubscribe(self, topic):
        pass

    def publish(self, event):
        pass

    @property
    def subscriptions(self):
        return frozenset()

    def on_message(self, message):
        self.messages.append(message)


class FakeTransport:
    """Collects sendto calls instead of hitting a socket."""

    def __init__(self):
        self.sent = []

    def sendto(self, data, addr):
        self.sent.append((data, addr))


def make_host(time_scale: float = SCALE, peers: int = 2):
    """A host wired to a fake transport inside a fresh running loop."""
    loop = asyncio.get_running_loop()
    protocol = ScriptedProtocol()
    host = AsyncioHost(0, loop, protocol, random.Random(7),
                       time_scale=time_scale)
    transport = FakeTransport()
    host.set_network(transport, [("127.0.0.1", 9000 + i)
                                 for i in range(peers)])
    host.set_epoch(loop.time())
    host.start()
    return host, protocol, transport


def run(coro):
    """Run one async test body on a fresh event loop."""
    return asyncio.run(coro)


HB = Heartbeat(sender=0, subscriptions=frozenset({Topic(".t")}))


class TestTimerContract:
    def test_schedule_fires_and_flips_active(self):
        async def body():
            host, _, _ = make_host()
            fired = []
            timer = host.schedule(1.0, fired.append, "x")
            assert timer.active
            await asyncio.sleep(2.0 / SCALE)
            assert fired == ["x"]
            assert timer.fired and not timer.active
        run(body())

    def test_cancel_prevents_firing(self):
        async def body():
            host, _, _ = make_host()
            fired = []
            timer = host.schedule(1.0, fired.append, "x")
            timer.cancel()
            assert not timer.active
            await asyncio.sleep(2.0 / SCALE)
            assert fired == []
        run(body())

    def test_timer_list_pruned(self):
        async def body():
            host, _, _ = make_host()
            for _ in range(200):
                host.schedule(50.0, lambda: None).cancel()
            assert len(host._timers) <= 65
        run(body())


class TestPeriodicContract:
    def test_ticks_repeat_until_stop(self):
        async def body():
            host, _, _ = make_host()
            ticks = []
            task = host.periodic(1.0, lambda: ticks.append(host.now))
            assert task.running and task.period == 1.0
            await asyncio.sleep(3.5 / SCALE)
            task.stop()
            assert not task.running
            count = len(ticks)
            assert count >= 2
            await asyncio.sleep(2.0 / SCALE)
            assert len(ticks) == count       # no ticks after stop
        run(body())

    def test_set_period_takes_effect_next_arm(self):
        async def body():
            host, _, _ = make_host()
            ticks = []
            task = host.periodic(1.0, lambda: ticks.append(host.now))
            task.set_period(1000.0)          # pending 1.0 tick unaffected
            assert task.period == 1000.0
            await asyncio.sleep(3.0 / SCALE)
            assert len(ticks) == 1           # re-armed far in the future
        run(body())

    def test_invalid_period_rejected(self):
        async def body():
            host, _, _ = make_host()
            with pytest.raises(ValueError):
                host.periodic(0.0, lambda: None)
            task = host.periodic(1.0, lambda: None)
            with pytest.raises(ValueError):
                task.set_period(-1.0)
        run(body())

    def test_jitter_draws_from_host_rng(self):
        async def body():
            host, _, _ = make_host()
            before = host.rng.getstate()
            host.periodic(1.0, lambda: None, jitter=0.5)
            assert host.rng.getstate() != before
        run(body())


class TestVirtualTime:
    def test_now_advances_scaled(self):
        async def body():
            host, _, _ = make_host(time_scale=100.0)
            t0 = host.now
            await asyncio.sleep(0.05)        # 5 virtual seconds
            elapsed = host.now - t0
            assert 3.0 <= elapsed <= 30.0
        run(body())

    def test_bad_time_scale_rejected(self):
        async def body():
            loop = asyncio.get_running_loop()
            with pytest.raises(ValueError):
                AsyncioHost(0, loop, ScriptedProtocol(), random.Random(1),
                            time_scale=0.0)
        run(body())


class TestSendAndReceive:
    def test_send_fans_out_to_every_peer(self):
        async def body():
            host, _, transport = make_host(peers=3)
            host.send(HB)
            assert len(transport.sent) == 3
            assert host.frames_sent == 1
            assert host.datagrams_sent == 3
            assert host.wire_bytes_sent == len(transport.sent[0][0])
        run(body())

    def test_receive_dispatches_to_protocol(self):
        async def body():
            host, protocol, _ = make_host()
            host.datagram_received(encode(HB), ("127.0.0.1", 5))
            assert protocol.messages == [HB]
            assert host.frames_received == 1
        run(body())

    def test_garbage_datagram_counted_not_fatal(self):
        async def body():
            host, protocol, _ = make_host()
            host.datagram_received(b"\x00garbage!", ("127.0.0.1", 5))
            host.datagram_received(b"", ("127.0.0.1", 5))
            assert protocol.messages == []
            assert host.frames_rejected == 2
        run(body())

    def test_deliver_records_first_delivery_time(self):
        async def body():
            host, _, _ = make_host()
            event = Event(EventId(1, 1), Topic(".t"), validity=10.0,
                          published_at=0.0)
            host.deliver(event)
            first = host.delivery_times[event.event_id]
            host.deliver(event)
            assert host.delivery_times[event.event_id] == first
            assert len(host.delivered_events) == 2
        run(body())


class TestFaultSemantics:
    def test_crash_stops_everything(self):
        async def body():
            host, protocol, transport = make_host()
            fired = []
            host.schedule(1.0, fired.append, "x")
            host.periodic(1.0, lambda: fired.append("tick"))
            host.crash()
            assert not host.alive and protocol.stopped == 1
            host.send(HB)                    # dropped, not queued
            await asyncio.sleep(3.0 / SCALE)
            assert fired == []
            assert transport.sent == []
        run(body())

    def test_recover_restarts_protocol(self):
        async def body():
            host, protocol, _ = make_host()
            host.crash()
            host.recover()
            assert host.alive and protocol.started == 2
            host.recover()                   # idempotent
            assert protocol.started == 2
        run(body())

    def test_crashed_node_is_deaf(self):
        async def body():
            host, protocol, _ = make_host()
            host.crash()
            host.datagram_received(encode(HB), ("127.0.0.1", 5))
            assert protocol.messages == []
        run(body())

    def test_silence_defers_and_flushes(self):
        async def body():
            host, _, transport = make_host(peers=2)
            host.silence()
            host.silence()                   # windows nest
            host.send(HB)
            assert transport.sent == []
            host.unsilence()
            assert transport.sent == []      # still one window open
            host.unsilence()
            assert len(transport.sent) == 2  # flushed to both peers
        run(body())

    def test_silenced_node_is_deaf_but_keeps_timers(self):
        async def body():
            host, protocol, _ = make_host()
            fired = []
            host.schedule(1.0, fired.append, "x")
            host.silence()
            host.datagram_received(encode(HB), ("127.0.0.1", 5))
            assert protocol.messages == []
            await asyncio.sleep(2.0 / SCALE)
            assert fired == ["x"]            # timers run through silence
        run(body())

    def test_crash_clears_deferred_sends(self):
        async def body():
            host, _, transport = make_host()
            host.silence()
            host.send(HB)
            host.crash()
            host.recover()
            assert host.silenced             # window survives, as in sim
            host.unsilence()
            assert transport.sent == []      # queue died with the crash
        run(body())

    def test_double_start_rejected(self):
        async def body():
            host, _, _ = make_host()
            with pytest.raises(RuntimeError):
                host.start()
        run(body())
