"""Property tests for the rt wire codec (repro.rt.codec).

Three guarantees, each driven with randomized hypothesis cases:

* **round-trip exactness** — ``decode(encode(m)) == m`` for every frame
  type over arbitrary field values;
* **malformed-input safety** — truncations, bit flips, garbage and
  trailing bytes raise :class:`CodecError` (never anything else), so the
  node receive loop can drop bad datagrams without dying;
* **unknown-version tolerance** — frames announcing a different wire
  version raise the dedicated :class:`UnsupportedVersion` subclass
  before any body parsing.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventId
from repro.core.topics import Topic
from repro.net.messages import EventBatch, EventIdList, Heartbeat
from repro.rt.codec import (MAGIC, WIRE_VERSION, CodecError,
                            UnsupportedVersion, decode, encode)

# -- strategies -------------------------------------------------------------

segments = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
topics = st.lists(segments, min_size=0, max_size=4).map(
    lambda parts: Topic.from_parts(parts))
node_ids = st.integers(min_value=-2**63, max_value=2**63 - 1)
seqs = st.integers(min_value=-2**63, max_value=2**63 - 1)
event_ids = st.builds(EventId, publisher=node_ids, seq=seqs)
finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
payloads = st.one_of(st.none(),
                     st.binary(max_size=64),
                     st.text(max_size=64))

events = st.builds(
    Event,
    event_id=event_ids,
    topic=topics,
    validity=st.floats(min_value=0.001, max_value=1e9, allow_nan=False),
    published_at=finite,
    payload_bytes=st.integers(min_value=0, max_value=2**32 - 1),
    payload=payloads)

heartbeats = st.builds(
    Heartbeat,
    sender=node_ids,
    subscriptions=st.frozensets(topics, max_size=6),
    speed=st.one_of(st.none(), finite))

id_lists = st.builds(
    EventIdList,
    sender=node_ids,
    event_ids=st.lists(event_ids, max_size=8).map(tuple))

batches = st.builds(
    EventBatch,
    sender=node_ids,
    events=st.lists(events, max_size=4).map(tuple),
    neighbor_ids=st.lists(node_ids, max_size=6).map(tuple))

messages = st.one_of(heartbeats, id_lists, batches)


# -- round trips ------------------------------------------------------------

class TestRoundTrip:
    @given(messages)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_exact(self, message):
        assert decode(encode(message)) == message

    @given(heartbeats)
    @settings(deadline=None)
    def test_heartbeat_fields_survive(self, hb):
        back = decode(encode(hb))
        assert back.sender == hb.sender
        assert back.subscriptions == hb.subscriptions
        assert back.speed == hb.speed

    @given(batches)
    @settings(deadline=None)
    def test_batch_event_payloads_survive(self, batch):
        back = decode(encode(batch))
        assert [e.payload for e in back.events] == \
            [e.payload for e in batch.events]
        assert back.neighbor_ids == batch.neighbor_ids

    def test_frame_starts_with_magic_and_version(self):
        data = encode(Heartbeat(sender=1, subscriptions=frozenset()))
        assert data[:2] == MAGIC
        assert data[2] == WIRE_VERSION


# -- malformed input --------------------------------------------------------

class TestMalformedInput:
    @given(messages)
    @settings(max_examples=60, deadline=None)
    def test_every_truncation_prefix_rejected(self, message):
        data = encode(message)
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode(data[:cut])

    @given(messages, st.binary(min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_trailing_bytes_rejected(self, message, tail):
        with pytest.raises(CodecError):
            decode(encode(message) + tail)

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_garbage_never_raises_anything_but_codec_error(self, data):
        try:
            decode(data)
        except CodecError:
            pass

    def test_bad_magic_rejected(self):
        data = bytearray(encode(EventIdList(sender=0, event_ids=())))
        data[0] ^= 0xFF
        with pytest.raises(CodecError):
            decode(bytes(data))

    def test_unknown_kind_rejected(self):
        data = bytearray(encode(EventIdList(sender=0, event_ids=())))
        data[3] = 99
        with pytest.raises(CodecError):
            decode(bytes(data))

    def test_non_wire_payload_rejected_at_encode_time(self):
        event = Event(EventId(0, 0), Topic(".t"), validity=1.0,
                      published_at=0.0, payload={"not": "wire-safe"})
        with pytest.raises(CodecError):
            encode(EventBatch(sender=0, events=(event,)))

    def test_unknown_message_type_rejected(self):
        with pytest.raises(CodecError):
            encode("not a frame")   # type: ignore[arg-type]

    def test_out_of_spec_event_rejected_on_decode(self):
        # Hand-craft a frame whose event has validity <= 0: the Event
        # constructor would refuse it, so the decoder must too — as a
        # CodecError, not a bare ValueError.
        good = Event(EventId(1, 1), Topic(".t"), validity=5.0,
                     published_at=0.0, payload=None)
        data = bytearray(encode(EventBatch(sender=1, events=(good,))))
        packed = struct.pack("!d", 5.0)
        idx = bytes(data).index(packed)
        data[idx:idx + 8] = struct.pack("!d", -1.0)
        with pytest.raises(CodecError):
            decode(bytes(data))


# -- version tolerance ------------------------------------------------------

class TestVersionTolerance:
    @given(messages, st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_foreign_version_raises_unsupported_version(self, message, v):
        data = bytearray(encode(message))
        data[2] = v
        if v == WIRE_VERSION:
            assert decode(bytes(data)) == message
        else:
            with pytest.raises(UnsupportedVersion):
                decode(bytes(data))

    def test_unsupported_version_is_a_codec_error(self):
        # One except clause in the receive loop covers both cases.
        assert issubclass(UnsupportedVersion, CodecError)
