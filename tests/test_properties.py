"""Property-based tests (hypothesis) on core data structures and
protocol invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventId, StoredEvent
from repro.core.gc import (FifoPolicy, RandomPolicy, ValidityForwardPolicy,
                           gc_score)
from repro.core.tables import EventTable, NeighborhoodTable
from repro.core.topics import Topic, subscriptions_related
from repro.sim.kernel import Simulator
from repro.sim.space import SpatialGrid, Vec2

# -- strategies -------------------------------------------------------------

segments = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
topics = st.lists(segments, min_size=0, max_size=5).map(
    lambda parts: Topic.from_parts(parts))
validities = st.floats(min_value=0.1, max_value=1e5, allow_nan=False)
forward_counts = st.integers(min_value=0, max_value=10_000)


def stored(seq: int, validity: float, fwd: int) -> StoredEvent:
    event = Event(EventId(0, seq), Topic(".t"), validity=validity,
                  published_at=0.0)
    return StoredEvent(event=event, stored_at=0.0, forward_count=fwd)


# -- topics -------------------------------------------------------------------

class TestTopicProperties:
    @given(topics)
    def test_string_round_trip(self, topic):
        assert Topic(str(topic)) == topic

    @given(topics)
    def test_covers_is_reflexive(self, topic):
        assert topic.covers(topic)

    @given(topics, topics)
    def test_related_is_symmetric(self, a, b):
        assert a.related_to(b) == b.related_to(a)

    @given(topics, topics, topics)
    def test_covers_is_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(topics, topics)
    def test_covers_antisymmetric(self, a, b):
        if a.covers(b) and b.covers(a):
            assert a == b

    @given(topics)
    def test_root_covers_all(self, topic):
        assert Topic.root().covers(topic)

    @given(topics, topics)
    def test_relatedness_of_singletons_matches_pairs(self, a, b):
        assert subscriptions_related([a], [b]) == a.related_to(b)

    @given(topics)
    def test_ancestor_chain_all_cover(self, topic):
        for ancestor in topic.ancestors():
            assert ancestor.covers(topic)
            assert not topic.covers(ancestor) or topic == ancestor


# -- Equation 1 ------------------------------------------------------------------

class TestGcScoreProperties:
    @given(validities, forward_counts)
    def test_score_in_unit_interval(self, val, fwd):
        assert 0.0 < gc_score(val, fwd) <= 1.0

    @given(validities, forward_counts, forward_counts)
    def test_monotone_decreasing_in_forwards(self, val, f1, f2):
        lo, hi = sorted((f1, f2))
        assert gc_score(val, hi) <= gc_score(val, lo)

    @given(validities, validities, forward_counts)
    def test_monotone_increasing_in_validity(self, v1, v2, fwd):
        lo, hi = sorted((v1, v2))
        assert gc_score(lo, fwd) <= gc_score(hi, fwd)

    @given(st.lists(st.tuples(validities, forward_counts), min_size=1,
                    max_size=20))
    def test_policy_picks_global_minimum(self, specs):
        rows = [stored(i, v, f) for i, (v, f) in enumerate(specs)]
        victim = ValidityForwardPolicy().select_victim(rows, now=0.0)
        best = min(gc_score(r.event.validity, r.forward_count)
                   for r in rows)
        assert gc_score(victim.event.validity,
                        victim.forward_count) == best


# -- event table -------------------------------------------------------------------

class TestEventTableProperties:
    @given(st.integers(min_value=1, max_value=16),
           st.lists(st.tuples(validities, st.booleans()), min_size=0,
                    max_size=40))
    @settings(max_examples=50)
    def test_capacity_never_exceeded(self, capacity, inserts):
        table = EventTable(capacity=capacity, rng=random.Random(0))
        now = 0.0
        for i, (validity, expired_flag) in enumerate(inserts):
            published = -2 * validity if expired_flag else now
            event = Event(EventId(1, i), Topic(".t"), validity=validity,
                          published_at=published)
            table.store(event, now=now)
            assert len(table) <= capacity
            now += 0.25

    @given(st.lists(validities, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_store_then_get_round_trips(self, vals):
        table = EventTable()
        events = [Event(EventId(2, i), Topic(".t"), validity=v,
                        published_at=0.0) for i, v in enumerate(vals)]
        for e in events:
            table.store(e, now=0.0)
        for e in events:
            assert table.get(e.event_id).event is e

    @given(st.permutations(list(range(8))))
    def test_eviction_order_ignores_insertion_order(self, order):
        """With FIFO disabled, Equation-1 eviction depends only on
        (validity, forwards), not on dict insertion order."""
        def run(sequence):
            table = EventTable(capacity=len(sequence))
            for i in sequence:
                e = Event(EventId(3, i), Topic(".t"),
                          validity=10.0 + i, published_at=0.0)
                table.store(e, now=0.0).forward_count = i
            table.store(Event(EventId(9, 99), Topic(".t"), validity=5.0,
                              published_at=0.0), now=0.0)
            return {r.event_id for r in table}
        assert run(order) == run(sorted(order))


# -- neighbourhood table ----------------------------------------------------------

class TestNeighborhoodProperties:
    @given(st.lists(st.tuples(st.integers(0, 20),
                              st.floats(0, 100, allow_nan=False)),
                    min_size=0, max_size=60))
    def test_collect_leaves_only_fresh(self, updates):
        table = NeighborhoodTable()
        for node_id, t in updates:
            table.upsert(node_id, [Topic(".a")], None, now=t)
        horizon = 50.0
        table.collect(now=100.0, ngc_delay=horizon)
        for entry in table:
            assert 100.0 - horizon <= entry.store_time


# -- spatial grid -------------------------------------------------------------------

class TestSpatialGridProperties:
    @given(st.lists(st.tuples(st.floats(-1e3, 1e3, allow_nan=False),
                              st.floats(-1e3, 1e3, allow_nan=False)),
                    min_size=0, max_size=50),
           st.floats(0, 500, allow_nan=False))
    @settings(max_examples=50)
    def test_grid_agrees_with_brute_force(self, points, radius):
        grid = SpatialGrid(cell_size=50.0)
        for i, (x, y) in enumerate(points):
            grid.insert(i, Vec2(x, y))
        center = Vec2(0.0, 0.0)
        expected = sorted(
            i for i, (x, y) in enumerate(points)
            if (x * x + y * y) ** 0.5 <= radius)
        assert grid.query_radius(center, radius) == expected


# -- kernel --------------------------------------------------------------------------

class TestKernelProperties:
    @given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=0,
                    max_size=50))
    def test_callbacks_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                    max_size=30), st.integers(0, 29))
    def test_cancelling_one_timer_spares_the_rest(self, delays, idx):
        sim = Simulator()
        fired = []
        timers = [sim.schedule(d, fired.append, i)
                  for i, d in enumerate(delays)]
        victim = timers[idx % len(timers)]
        victim.cancel()
        sim.run_until_idle()
        assert len(fired) == len(delays) - 1
        assert (idx % len(timers)) not in fired
