"""Unit tests for mobility models (repro.mobility)."""

from __future__ import annotations

import math

import pytest

from repro.mobility import (CitySection, RandomWaypoint, Stationary,
                            campus_map, grid_map)
from repro.mobility.base import Leg, MobilityModel, PauseLeg
from repro.sim.space import Vec2


class TestLegInterpolation:
    class OneLeg(MobilityModel):
        """Moves 0,0 -> 100,0 at 10 m/s, then stays forever."""
        def _initial_position(self):
            return Vec2(0, 0)
        def _next_leg(self, origin):
            if self.legs_completed == 0:
                return Leg(origin, Vec2(100, 0), 10.0, 0.0)
            return PauseLeg(origin, float("inf"), 0.0)

    def test_position_interpolates_linearly(self, sim, rngs):
        model = self.OneLeg()
        model.start(sim, rngs.stream("m"))
        assert model.position() == Vec2(0, 0)
        sim.run(until=5.0)
        assert model.position().x == pytest.approx(50.0)
        assert model.current_speed() == 10.0

    def test_position_clamps_at_leg_end(self, sim, rngs):
        model = self.OneLeg()
        model.start(sim, rngs.stream("m"))
        sim.run(until=20.0)
        assert model.position() == Vec2(100, 0)
        assert model.current_speed() == 0.0   # paused forever

    def test_queries_before_start_rejected(self):
        model = self.OneLeg()
        with pytest.raises(RuntimeError):
            model.position()
        with pytest.raises(RuntimeError):
            model.current_speed()

    def test_double_start_rejected(self, sim, rngs):
        model = self.OneLeg()
        model.start(sim, rngs.stream("m"))
        with pytest.raises(RuntimeError):
            model.start(sim, rngs.stream("m"))

    def test_stop_freezes_position(self, sim, rngs):
        model = self.OneLeg()
        model.start(sim, rngs.stream("m"))
        sim.run(until=3.0)
        model.stop()
        frozen = model.position()
        sim.run(until=30.0)
        assert model.position() == frozen
        assert model.current_speed() == 0.0


class TestStationary:
    def test_fixed_position(self, sim, rngs):
        model = Stationary(position=Vec2(7, 8))
        model.start(sim, rngs.stream("m"))
        sim.run(until=100.0)
        assert model.position() == Vec2(7, 8)
        assert model.current_speed() == 0.0

    def test_random_position_inside_area(self, sim, rngs):
        model = Stationary(width=50.0, height=20.0)
        model.start(sim, rngs.stream("m"))
        p = model.position()
        assert 0 <= p.x <= 50 and 0 <= p.y <= 20

    def test_requires_position_or_area(self):
        with pytest.raises(ValueError):
            Stationary()


class TestRandomWaypoint:
    def test_stays_inside_area(self, sim, rngs):
        model = RandomWaypoint(100.0, 100.0, 5.0, 10.0, pause_time=0.5)
        model.start(sim, rngs.stream("m"))
        for t in range(1, 60):
            sim.run(until=float(t))
            p = model.position()
            assert -1e-9 <= p.x <= 100.0 + 1e-9
            assert -1e-9 <= p.y <= 100.0 + 1e-9

    def test_speed_within_range_when_moving(self, sim, rngs):
        model = RandomWaypoint(1000.0, 1000.0, 5.0, 10.0, pause_time=0.0)
        model.start(sim, rngs.stream("m"))
        speeds = set()
        for t in range(1, 40):
            sim.run(until=float(t))
            s = model.current_speed()
            if s > 0:
                speeds.add(s)
                assert 5.0 <= s <= 10.0
        assert speeds   # it did move

    def test_pause_between_legs(self, sim, rngs):
        model = RandomWaypoint(100.0, 100.0, 50.0, 50.0, pause_time=5.0)
        model.start(sim, rngs.stream("m"))
        paused_seen = False
        for t in [x * 0.5 for x in range(1, 80)]:
            sim.run(until=t)
            if model.current_speed() == 0.0:
                paused_seen = True
        assert paused_seen

    def test_zero_speed_max_is_stationary(self, sim, rngs):
        model = RandomWaypoint(100.0, 100.0, 0.0, 0.0)
        model.start(sim, rngs.stream("m"))
        first = model.position()
        sim.run(until=50.0)
        assert model.position() == first

    def test_actual_displacement_matches_speed(self, sim, rngs):
        model = RandomWaypoint(10_000.0, 10_000.0, 10.0, 10.0,
                               pause_time=0.0)
        model.start(sim, rngs.stream("m"))
        sim.run(until=1.0)
        p0 = model.position()
        sim.run(until=2.0)
        p1 = model.position()
        # Within one leg the distance covered in 1 s is exactly the speed
        # (legs in a 10 km area are long, direction change unlikely).
        if model.legs_completed == 0:
            assert p0.distance_to(p1) == pytest.approx(10.0, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypoint(0.0, 100.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            RandomWaypoint(100.0, 100.0, 5.0, 2.0)
        with pytest.raises(ValueError):
            RandomWaypoint(100.0, 100.0, 1.0, 2.0, pause_time=-1.0)

    def test_deterministic_given_seed(self):
        def trace(seed):
            from repro.sim import RngRegistry, Simulator
            sim = Simulator()
            model = RandomWaypoint(500.0, 500.0, 1.0, 10.0)
            model.start(sim, RngRegistry(seed).stream("m"))
            out = []
            for t in range(1, 20):
                sim.run(until=float(t))
                out.append(model.position().as_tuple())
            return out
        assert trace(5) == trace(5)
        assert trace(5) != trace(6)


class TestStreetMaps:
    def test_campus_map_extent(self):
        extent = campus_map().extent
        assert extent == (1200.0, 900.0)

    def test_speed_limits_in_paper_band(self):
        smap = campus_map()
        for u, v, data in smap.graph.edges(data=True):
            assert 8.0 <= data["speed_limit"] <= 13.0

    def test_popularity_weights_positive(self):
        weights = campus_map().popularity_weights()
        assert all(w > 0 for w in weights.values())

    def test_main_avenue_more_popular(self):
        smap = grid_map(5, 5, 400, 400, main_avenue_popularity=6.0, seed=1)
        pops = [d["popularity"] for _, _, d in smap.graph.edges(data=True)]
        assert max(pops) == 6.0
        assert min(pops) < 2.0

    def test_route_connects_endpoints(self):
        smap = campus_map()
        nodes = smap.intersections()
        path = smap.route(nodes[0], nodes[-1])
        assert path[0] == nodes[0] and path[-1] == nodes[-1]
        for a, b in zip(path, path[1:]):
            assert smap.graph.has_edge(a, b)

    def test_route_cache_returns_same_object(self):
        smap = campus_map()
        nodes = smap.intersections()
        assert smap.route(nodes[0], nodes[3]) is \
            smap.route(nodes[0], nodes[3])

    def test_grid_map_validation(self):
        with pytest.raises(ValueError):
            grid_map(1, 5, 100, 100)

    def test_choose_destination_excludes_current(self, rngs):
        smap = campus_map()
        rng = rngs.stream("d")
        current = smap.intersections()[0]
        for _ in range(20):
            assert smap.choose_destination(rng, exclude=current) != current


class TestCitySection:
    def test_positions_stay_on_streets(self, sim, rngs):
        smap = campus_map()
        model = CitySection(smap, stop_probability=0.2)
        model.start(sim, rngs.stream("m"))
        positions = {n: smap.position_of(n) for n in smap.graph.nodes}
        for t in range(1, 120, 3):
            sim.run(until=float(t))
            p = model.position()
            on_street = any(
                _point_on_segment(p, positions[u], positions[v])
                for u, v in smap.graph.edges)
            assert on_street, f"{p} off-street at t={t}"

    def test_speed_is_road_speed_limit(self, sim, rngs):
        smap = campus_map()
        model = CitySection(smap, stop_probability=0.0)
        model.start(sim, rngs.stream("m"))
        for t in range(1, 60, 2):
            sim.run(until=float(t))
            s = model.current_speed()
            assert s == 0.0 or 8.0 <= s <= 13.0

    def test_stops_happen(self, sim, rngs):
        model = CitySection(campus_map(), stop_probability=1.0,
                            stop_min=2.0, stop_max=4.0)
        model.start(sim, rngs.stream("m"))
        stopped = False
        for t in [x * 0.5 for x in range(1, 200)]:
            sim.run(until=t)
            if model.current_speed() == 0.0:
                stopped = True
        assert stopped

    def test_fixed_start_node(self, sim, rngs):
        smap = campus_map()
        node = smap.intersections()[4]
        model = CitySection(smap, start_node=node)
        model.start(sim, rngs.stream("m"))
        assert model.position() == smap.position_of(node)

    def test_unknown_start_node_rejected(self, sim, rngs):
        model = CitySection(campus_map(), start_node=99999)
        with pytest.raises(ValueError):
            model.start(sim, rngs.stream("m"))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CitySection(campus_map(), stop_probability=1.5)
        with pytest.raises(ValueError):
            CitySection(campus_map(), stop_min=5.0, stop_max=1.0)


def _point_on_segment(p: Vec2, a: Vec2, b: Vec2, tol: float = 1e-6) -> bool:
    """Is p within tol of segment ab?"""
    ab = b - a
    ap = p - a
    denom = ab.dot(ab)
    if denom == 0:
        return p.distance_to(a) <= tol
    t = max(0.0, min(1.0, ap.dot(ab) / denom))
    closest = a.lerp(b, t)
    return p.distance_to(closest) <= tol
