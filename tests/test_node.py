"""Unit tests for the node/host binding (repro.net.node)."""

from __future__ import annotations

import pytest

from repro.core import FrugalConfig, FrugalPubSub
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.net.messages import Heartbeat
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2

from tests.helpers import make_event


def make_node(sim, rngs, node_id=0, pos=Vec2(0, 0), medium=None,
              speed_sensor=True, config=None):
    medium = medium or WirelessMedium(
        sim, RadioConfig(range_override_m=100.0),
        rng=rngs.stream("medium"))
    proto = FrugalPubSub(config or FrugalConfig(hb_jitter=0.0))
    node = Node(node_id, sim, medium, Stationary(position=pos), proto,
                rngs.stream("node", node_id), speed_sensor=speed_sensor)
    return node, medium


class TestLifecycle:
    def test_start_boots_mobility_and_protocol(self, sim, rngs):
        node, _ = make_node(sim, rngs)
        node.protocol.subscribe(".a")
        node.start()
        assert node.alive
        assert node.mobility.started
        sim.run(until=2.0)
        assert node.protocol.heartbeats_sent >= 1

    def test_double_start_rejected(self, sim, rngs):
        node, _ = make_node(sim, rngs)
        node.start()
        with pytest.raises(RuntimeError):
            node.start()

    def test_crash_silences_node(self, sim, rngs):
        node, medium = make_node(sim, rngs)
        node.protocol.subscribe(".a")
        node.start()
        sim.run(until=2.0)
        node.crash()
        frames_before = medium.frames_sent
        sim.run(until=10.0)
        assert medium.frames_sent == frames_before

    def test_crashed_node_ignores_receptions(self, sim, rngs):
        node, medium = make_node(sim, rngs)
        node.protocol.subscribe(".a")
        node.start()
        node.crash()
        node.receive(Heartbeat(sender=9, subscriptions=frozenset()))
        assert 9 not in node.protocol.neighborhood

    def test_recover_restarts_protocol(self, sim, rngs):
        node, medium = make_node(sim, rngs)
        node.protocol.subscribe(".a")
        node.start()
        sim.run(until=2.0)
        node.crash()
        sim.run(until=4.0)
        node.recover()
        before = medium.frames_sent
        sim.run(until=8.0)
        assert medium.frames_sent > before

    def test_crash_is_idempotent(self, sim, rngs):
        node, _ = make_node(sim, rngs)
        node.start()
        node.crash()
        node.crash()
        assert not node.alive

    def test_scheduled_callbacks_guarded_after_crash(self, sim, rngs):
        node, _ = make_node(sim, rngs)
        node.start()
        fired = []
        node.schedule(5.0, fired.append, "x")
        node.crash()
        sim.run(until=10.0)
        assert fired == []


class TestHostInterface:
    def test_now_tracks_sim_time(self, sim, rngs):
        node, _ = make_node(sim, rngs)
        sim.run(until=3.5)
        assert node.now == 3.5

    def test_speed_sensor_toggle(self, sim, rngs):
        with_sensor, _ = make_node(sim, rngs, node_id=0)
        without, _ = make_node(sim, rngs, node_id=1)
        without.speed_sensor = False
        with_sensor.start()
        without.start()
        assert with_sensor.current_speed() == 0.0   # stationary
        assert without.current_speed() is None

    def test_deliver_records_and_notifies(self, sim, rngs):
        node, _ = make_node(sim, rngs)
        seen = []
        node.on_deliver = lambda n, e: seen.append((n.id, e.event_id))
        event = make_event()
        node.deliver(event)
        assert node.delivered_events == [event]
        assert seen == [(0, event.event_id)]

    def test_send_suppressed_when_dead(self, sim, rngs):
        node, medium = make_node(sim, rngs)
        node.start()
        node.crash()
        node.send(Heartbeat(sender=0, subscriptions=frozenset()))
        sim.run_until_idle()
        assert medium.frames_sent == 0


class TestTwoNodeInteraction:
    def test_neighbors_discover_each_other(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                rng=rngs.stream("medium"))
        a, _ = make_node(sim, rngs, node_id=0, pos=Vec2(0, 0),
                         medium=medium)
        b, _ = make_node(sim, rngs, node_id=1, pos=Vec2(50, 0),
                         medium=medium)
        for n in (a, b):
            n.protocol.subscribe(".a")
            n.start()
        sim.run(until=5.0)
        assert 1 in a.protocol.neighborhood
        assert 0 in b.protocol.neighborhood

    def test_event_flows_between_nodes(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                rng=rngs.stream("medium"))
        a, _ = make_node(sim, rngs, node_id=0, pos=Vec2(0, 0),
                         medium=medium)
        b, _ = make_node(sim, rngs, node_id=1, pos=Vec2(50, 0),
                         medium=medium)
        for n in (a, b):
            n.protocol.subscribe(".a")
            n.start()
        # Publish off the whole-second heartbeat instants: with zero
        # heartbeat jitter, a publish at exactly t=3.0 contends with both
        # nodes' beacons and the paper's optimistic neighbour marking
        # (Fig. 9 lines 7-11) never retries a frame lost between two
        # statically connected peers — churn is the paper's repair path.
        sim.run(until=2.5)
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=sim.now)
        a.protocol.publish(event)
        sim.run(until=6.0)
        assert b.delivered_events == [event]
