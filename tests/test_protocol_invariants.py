"""Simulation-level protocol invariants under randomised worlds.

Hypothesis generates small random topologies, subscription assignments and
publication schedules; each world runs end to end and the invariants that
must hold for *any* execution of the protocol are checked:

* no process delivers the same event twice,
* no process delivers an event it is not entitled to,
* every delivery happens within the event's validity window,
* a process's forward counter never exceeds its batch transmissions,
* the publisher always delivers its own event,
* event tables never exceed their configured capacity.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.core.topics import Topic, subscription_matches_event
from repro.mobility import RandomWaypoint, Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2

TOPIC_POOL = [".a", ".a.b", ".a.b.c", ".x", ".x.y"]

worlds = st.fixed_dictionaries({
    "seed": st.integers(0, 10_000),
    "n_nodes": st.integers(2, 8),
    "subscriptions": st.lists(st.sampled_from(TOPIC_POOL), min_size=2,
                              max_size=8),
    "moving": st.booleans(),
    "capacity": st.one_of(st.none(), st.integers(1, 4)),
    "publications": st.lists(
        st.fixed_dictionaries({
            "topic": st.sampled_from(TOPIC_POOL),
            "validity": st.floats(5.0, 60.0),
            "at": st.floats(1.0, 20.0),
        }), min_size=1, max_size=5),
})


def run_world(params) -> dict:
    """Build and run one randomised world; return everything checkable."""
    sim = Simulator()
    rngs = RngRegistry(params["seed"])
    medium = WirelessMedium(sim, RadioConfig(range_override_m=150.0),
                            rng=rngs.stream("medium"))
    n = params["n_nodes"]
    config = FrugalConfig(event_table_capacity=params["capacity"])
    nodes = []
    for i in range(n):
        if params["moving"]:
            mobility = RandomWaypoint(400.0, 400.0, 5.0, 15.0)
        else:
            mobility = Stationary(width=400.0, height=400.0)
        protocol = FrugalPubSub(config)
        node = Node(i, sim, medium, mobility, protocol,
                    rngs.stream("node", i))
        topic = params["subscriptions"][i % len(params["subscriptions"])]
        protocol.subscribe(topic)
        nodes.append(node)
    for node in nodes:
        node.start()

    published = []
    factory = EventFactory(0)

    def publish(spec):
        event = factory.create(spec["topic"], validity=spec["validity"],
                               now=sim.now, payload_bytes=64)
        published.append(event)
        nodes[0].protocol.publish(event)

    for spec in params["publications"]:
        sim.call_at(spec["at"], publish, spec)
    sim.run(until=90.0)
    return {"nodes": nodes, "published": published, "config": config}


@given(worlds)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_protocol_invariants(params):
    world = run_world(params)
    nodes = world["nodes"]
    capacity = world["config"].event_table_capacity

    for node in nodes:
        delivered_ids = [e.event_id for e in node.delivered_events]
        # No duplicate deliveries — unless the bounded event table evicted
        # a *still-valid* event: the table is the paper's only dedup state
        # (Fig. 9 line 21), so re-receiving an evicted event re-delivers.
        # That is the accepted cost of bounded memory (Section 4.4).
        if node.protocol.events.evictions_policy == 0:
            assert len(delivered_ids) == len(set(delivered_ids)), \
                f"node {node.id} delivered a duplicate"
        subs = node.protocol.subscriptions
        for event in node.delivered_events:
            if event.event_id.publisher == node.id:
                # The paper's publish() always delivers locally (Fig. 9
                # line 49), subscribed or not.
                continue
            # Entitlement: only subscribed(-ancestor) topics delivered.
            assert subscription_matches_event(subs, event.topic), \
                f"node {node.id} got a parasite {event.topic}"
        # Bounded memory.
        if capacity is not None:
            assert len(node.protocol.events) <= capacity
        # Forward accounting: transmissions happen one batch at a time.
        proto = node.protocol
        assert proto.events_forwarded >= 0
        assert proto.batches_sent <= proto.events_forwarded or \
            proto.batches_sent == 0

    # The publisher (node 0) delivered every event it was entitled to.
    publisher = nodes[0]
    for event in world["published"]:
        if subscription_matches_event(publisher.protocol.subscriptions,
                                      event.topic):
            assert event in publisher.delivered_events


@given(worlds)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_deliveries_within_validity(params):
    """Track delivery instants with a hook; none may exceed expiry.

    (A small slack covers the frame that was already in flight when the
    validity elapsed — airtime is ~4 ms.)
    """
    sim = Simulator()
    rngs = RngRegistry(params["seed"])
    medium = WirelessMedium(sim, RadioConfig(range_override_m=150.0),
                            rng=rngs.stream("medium"))
    late = []

    def check(node, event):
        if node.sim.now > event.expires_at + 0.01:
            late.append((node.id, event.event_id))

    nodes = []
    for i in range(params["n_nodes"]):
        protocol = FrugalPubSub(FrugalConfig())
        node = Node(i, sim, medium, Stationary(width=400.0, height=400.0),
                    protocol, rngs.stream("node", i))
        topic = params["subscriptions"][i % len(params["subscriptions"])]
        protocol.subscribe(topic)
        node.on_deliver = check
        nodes.append(node)
    for node in nodes:
        node.start()
    factory = EventFactory(0)
    for spec in params["publications"]:
        sim.call_at(spec["at"],
                    lambda s=spec: nodes[0].protocol.publish(
                        factory.create(s["topic"], validity=s["validity"],
                                       now=sim.now, payload_bytes=64)))
    sim.run(until=120.0)
    assert late == [], f"late deliveries: {late}"


@given(st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_whole_simulation_determinism(seed):
    """Identical seeds => bit-identical outcomes, any seed."""
    def fingerprint():
        params = {"seed": seed, "n_nodes": 5,
                  "subscriptions": [".a", ".a.b"], "moving": True,
                  "capacity": None,
                  "publications": [{"topic": ".a.b", "validity": 30.0,
                                    "at": 5.0}]}
        world = run_world(params)
        return tuple(
            (n.id, tuple(str(e.event_id) for e in n.delivered_events),
             n.protocol.heartbeats_sent, n.protocol.batches_sent)
            for n in world["nodes"])
    assert fingerprint() == fingerprint()
