"""Fault & churn subsystem tests (repro.faults).

Covers the four fault mechanisms (declarative plans, stochastic churn,
regional outages, link/burst loss), their determinism, and the paired
no-op verification: an *empty* ``FaultConfig`` must be bit-identical to
``faults=None`` on every scenario family — the same discipline
``with_flat_medium`` established for the spatial index.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.events import EventFactory
from repro.faults import (ChurnConfig, FaultConfig, FaultEvent, FaultPlan,
                          FaultTimeline, LinkLossConfig, RegionalOutage)
from repro.harness.scenario import (CitySectionSpec, FixedPositionsSpec,
                                    Publication, RandomWaypointSpec,
                                    ScenarioConfig, build_world,
                                    run_scenario)
from repro.net import RadioConfig
from repro.sim.space import Vec2


def rwp_config(**changes) -> ScenarioConfig:
    cfg = ScenarioConfig(
        n_processes=8,
        mobility=RandomWaypointSpec(width=900.0, height=900.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=40.0, warmup=4.0, seed=3,
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=30.0),))
    return cfg.with_changes(**changes)


def line_config(n=4, spacing=50.0, **changes) -> ScenarioConfig:
    cfg = ScenarioConfig(
        n_processes=n,
        mobility=FixedPositionsSpec(
            positions=tuple((i * spacing, 0.0) for i in range(n))),
        duration=100.0, warmup=0.0, seed=7,
        radio=RadioConfig(range_override_m=300.0),
        event_topic=".a")
    return cfg.with_changes(**changes)


# --------------------------------------------------------------------------
# Config validation
# --------------------------------------------------------------------------

class TestValidation:
    def test_fault_event_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(at=1.0, kind="explode", nodes=(0,))

    def test_fault_event_needs_exactly_one_target(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(at=1.0, kind="crash")
        with pytest.raises(ValueError, match="target"):
            FaultEvent(at=1.0, kind="crash", nodes=(0,), fraction=0.5)

    def test_fault_event_duration_only_where_undoable(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(at=1.0, kind="recover", nodes=(0,), duration=5.0)
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(at=1.0, kind="drain", nodes=(0,), duration=5.0)
        # crash and silence both undo fine
        assert FaultEvent(at=1.0, kind="crash", nodes=(0,),
                          duration=5.0).undo_kind == "recover"
        assert FaultEvent(at=1.0, kind="silence", fraction=0.5,
                          duration=5.0).undo_kind == "restore"

    def test_scenario_rejects_fault_outside_window(self):
        plan = FaultPlan((FaultEvent(at=50.0, kind="crash", nodes=(0,)),))
        with pytest.raises(ValueError, match="outside the measurement"):
            rwp_config(faults=FaultConfig(plan=plan))

    def test_scenario_rejects_fault_target_out_of_range(self):
        plan = FaultPlan((FaultEvent(at=1.0, kind="crash", nodes=(99,)),))
        with pytest.raises(ValueError, match="only 8 processes"):
            rwp_config(faults=FaultConfig(plan=plan))

    def test_scenario_rejects_churn_starting_after_window(self):
        churn = ChurnConfig(mean_session_s=10.0, mean_rest_s=5.0,
                            start_at=60.0)
        with pytest.raises(ValueError, match="churn start_at"):
            rwp_config(faults=FaultConfig(churn=churn))

    def test_churn_config_bounds(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_session_s=0.0, mean_rest_s=5.0)
        with pytest.raises(ValueError):
            ChurnConfig(mean_session_s=5.0, mean_rest_s=5.0, fraction=1.5)
        with pytest.raises(ValueError):
            ChurnConfig(mean_session_s=5.0, mean_rest_s=5.0,
                        distribution="zipf")

    def test_outage_bounds(self):
        with pytest.raises(ValueError):
            RegionalOutage(at=1.0, duration=0.0, center=(0.0, 0.0),
                           radius_m=10.0)
        with pytest.raises(ValueError):
            RegionalOutage(at=1.0, duration=5.0, center=(0.0, 0.0),
                           radius_m=10.0, kind="meteor")

    def test_loss_config_bounds(self):
        with pytest.raises(ValueError):
            LinkLossConfig(link_loss_min=0.5, link_loss_max=0.2)
        with pytest.raises(ValueError):
            LinkLossConfig(burst_rate_per_s=0.1)   # no duration
        assert not LinkLossConfig().enabled
        assert LinkLossConfig(link_loss_max=0.1).enabled

    def test_publication_inside_warmup_is_impossible(self):
        """Satellite regression: Publication.at is relative to the end
        of warm-up, so the only way into warm-up — a negative offset —
        is rejected with a message saying exactly that."""
        with pytest.raises(ValueError, match="warm-up"):
            rwp_config(publications=(Publication(at=-1.0, validity=10.0),))

    def test_publication_beyond_duration_still_rejected(self):
        with pytest.raises(ValueError, match="outside the measurement"):
            rwp_config(publications=(Publication(at=40.0, validity=10.0),))


# --------------------------------------------------------------------------
# Paired no-op verification (the with_flat_medium discipline)
# --------------------------------------------------------------------------

#: One config per scenario family; an empty FaultConfig must change
#: nothing anywhere.
FAMILIES = {
    "rwp-frugal": lambda: rwp_config(),
    "rwp-gossip": lambda: rwp_config(protocol="gossip-flooding"),
    "city-frugal": lambda: ScenarioConfig(
        n_processes=6, mobility=CitySectionSpec(),
        duration=30.0, warmup=5.0, seed=2,
        radio=RadioConfig.paper_city_section(),
        publications=(Publication(at=2.0, validity=25.0),)),
    "line-frugal": lambda: line_config(),
}


class TestNoopPairing:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_empty_faultconfig_is_bit_identical(self, name):
        plain = run_scenario(FAMILIES[name]())
        empty = run_scenario(FAMILIES[name]().with_changes(
            faults=FaultConfig()))
        base = plain.summary()
        # Exact float equality on every shared metric, like the
        # spatial-index pairing tests.
        assert {k: empty.summary()[k] for k in base} == base
        assert empty.sim_events_processed == plain.sim_events_processed
        assert empty.subscriber_ids == plain.subscriber_ids
        assert empty.per_event_reports() == plain.per_event_reports()
        # And the fault columns report a perfectly healthy network.
        assert empty.summary()["availability"] == 1.0
        assert empty.summary()["churn_reliability"] == \
            base["reliability"]
        assert empty.summary()["downtime_s"] == 0.0


# --------------------------------------------------------------------------
# Mechanisms
# --------------------------------------------------------------------------

class TestPlan:
    def test_fraction_targets_draw_deterministically(self):
        plan = FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.5,
                                     duration=10.0),))
        cfg = rwp_config(faults=FaultConfig(plan=plan))
        a, b = run_scenario(cfg), run_scenario(cfg)
        assert a.faults.down_intervals == b.faults.down_intervals
        assert len(a.faults.down_intervals) == 4    # half of 8

    def test_drain_is_permanent(self):
        cfg = line_config(faults=FaultConfig(plan=FaultPlan((
            FaultEvent(at=10.0, kind="drain", nodes=(3,)),))))
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        world.sim.run(until=20.0)
        victim = world.nodes[3]
        assert victim.depleted and not victim.alive
        assert victim.id not in world.medium.nodes
        victim.recover()                    # must refuse
        assert not victim.alive
        world.faults.finalize()
        assert world.faults.timeline.down_intervals[3] == [(10.0, 20.0)]

    def test_silence_queues_and_flushes(self):
        cfg = line_config(faults=FaultConfig(plan=FaultPlan((
            FaultEvent(at=5.0, kind="silence", nodes=(0,), duration=10.0),
        ))))
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        sim, nodes = world.sim, world.nodes
        sim.run(until=6.0)
        silenced = nodes[0]
        assert silenced.silenced and silenced.alive
        assert not silenced.listening
        event = EventFactory(0).create(".a.x", validity=200.0, now=sim.now)
        silenced.protocol.publish(event)    # queued, not on the air
        sim.run(until=10.0)
        assert all(event not in n.delivered_events for n in nodes[1:])
        sim.run(until=60.0)                 # restored at 15.0, flushes
        assert all(event in n.delivered_events for n in nodes[1:])


class TestOverlappingFaults:
    def test_silence_windows_nest(self):
        """Two overlapping silence windows: the radio only returns when
        the *last* one lifts (depth-counted, not boolean)."""
        cfg = line_config(faults=FaultConfig(plan=FaultPlan((
            FaultEvent(at=5.0, kind="silence", nodes=(0,), duration=20.0),
            FaultEvent(at=10.0, kind="silence", nodes=(0,),
                       duration=30.0)))))
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        sim, victim = world.sim, world.nodes[0]
        sim.run(until=12.0)
        assert victim.silenced
        sim.run(until=30.0)          # first window lifted at 25.0
        assert victim.silenced, "inner window must keep the radio down"
        sim.run(until=45.0)          # second window lifted at 40.0
        assert not victim.silenced and victim.listening
        world.faults.finalize()
        # One contiguous down interval across both windows.
        assert world.faults.timeline.down_intervals[0] == [(5.0, 40.0)]

    def test_crash_outage_over_silenced_node_is_temporary(self):
        """A crash-kind outage hitting an already-silenced node must not
        make the crash permanent: the outage end restarts the process,
        the silence window's own restore returns the radio."""
        cfg = line_config(faults=FaultConfig(
            plan=FaultPlan((FaultEvent(at=5.0, kind="silence", nodes=(2,),
                                       duration=35.0),)),
            outages=(RegionalOutage(at=10.0, duration=20.0,
                                    center=(100.0, 0.0), radius_m=10.0,
                                    kind="crash"),)))
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        sim, victim = world.sim, world.nodes[2]
        sim.run(until=15.0)
        assert not victim.alive and victim.silenced
        sim.run(until=35.0)          # outage lifted at 30.0
        assert victim.alive, "outage end must restart the process"
        assert victim.silenced, "silence window still open"
        sim.run(until=60.0)          # silence lifted at 40.0
        assert victim.alive and victim.listening
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        world.nodes[0].protocol.publish(event)
        sim.run(until=90.0)
        assert event in victim.delivered_events


class TestChurn:
    def test_churn_produces_downtime_and_recoveries(self):
        cfg = rwp_config(faults=FaultConfig(churn=ChurnConfig(
            mean_session_s=10.0, mean_rest_s=5.0)))
        result = run_scenario(cfg)
        assert 0.0 < result.availability() < 1.0
        assert result.faults.recoveries
        assert result.mean_downtime_s() > 0.0

    def test_fixed_distribution_is_clockwork(self):
        cfg = line_config(faults=FaultConfig(churn=ChurnConfig(
            mean_session_s=30.0, mean_rest_s=10.0, distribution="fixed")))
        result = run_scenario(cfg)
        # Every node: up 30, down 10, up 30, down 10 ... over 100 s.
        for node_id in range(4):
            assert result.faults.down_intervals[node_id] == \
                [(30.0, 40.0), (70.0, 80.0)]
        assert result.availability() == pytest.approx(0.8)

    def test_churn_fraction_limits_membership(self):
        cfg = rwp_config(faults=FaultConfig(churn=ChurnConfig(
            mean_session_s=5.0, mean_rest_s=5.0, fraction=0.25)))
        result = run_scenario(cfg)
        assert len(result.faults.down_intervals) == 2   # quarter of 8

    def test_per_node_streams_are_independent(self):
        """Restricting churn to a fraction must not shift the members'
        session draws: member nodes keep identical traces."""
        full = run_scenario(rwp_config(faults=FaultConfig(
            churn=ChurnConfig(mean_session_s=8.0, mean_rest_s=4.0))))
        frac = run_scenario(rwp_config(faults=FaultConfig(
            churn=ChurnConfig(mean_session_s=8.0, mean_rest_s=4.0,
                              fraction=0.25))))
        for node_id in frac.faults.down_intervals:
            assert frac.faults.down_intervals[node_id] == \
                full.faults.down_intervals[node_id]


class TestOutage:
    def test_outage_hits_exactly_the_region(self):
        # Nodes at x = 0, 50, 100, ..., 350; region covers x <= 100.
        cfg = line_config(n=8, faults=FaultConfig(outages=(
            RegionalOutage(at=10.0, duration=20.0, center=(0.0, 0.0),
                           radius_m=100.0),)))
        result = run_scenario(cfg)
        assert sorted(result.faults.down_intervals) == [0, 1, 2]
        for node_id in (0, 1, 2):
            assert result.faults.down_intervals[node_id] == [(10.0, 30.0)]
        assert result.faults.outages == [(10.0, 3)]

    def test_outage_members_match_between_grid_and_flat_medium(self):
        cfg = rwp_config(faults=FaultConfig(outages=(
            RegionalOutage(at=5.0, duration=15.0, center=(450.0, 450.0),
                           radius_m=300.0, kind="crash"),)))
        grid = run_scenario(cfg)
        flat = run_scenario(cfg.with_flat_medium())
        assert grid.faults.down_intervals == flat.faults.down_intervals
        assert grid.summary() == flat.summary()

    def test_crash_outage_loses_state_silence_keeps_it(self):
        def run(kind):
            cfg = line_config(faults=FaultConfig(outages=(
                RegionalOutage(at=30.0, duration=30.0, center=(0.0, 0.0),
                               radius_m=500.0, kind=kind),)),
                publications=(Publication(at=2.0, validity=20.0),))
            return run_scenario(cfg)
        # The event is delivered before the outage either way; what
        # differs is protocol state across it: crashed nodes restart
        # empty and must re-sync, observable as different traffic after
        # the window lifts.
        silence = run("silence")
        crash = run("crash")
        assert silence.reliability() == crash.reliability() == 1.0
        # Crashed nodes restart empty and re-announce; silenced ones
        # resume with full neighbour tables — strictly less re-sync
        # traffic after the window lifts.
        assert crash.sim_events_processed != silence.sim_events_processed


class TestLoss:
    def test_per_link_probability_is_stable_and_in_range(self):
        cfg = line_config(faults=FaultConfig(loss=LinkLossConfig(
            link_loss_min=0.2, link_loss_max=0.6)))
        world = build_world(cfg)
        process = world.faults.loss_process
        p1 = process.link_probability(0, 1)
        assert 0.2 <= p1 <= 0.6
        assert process.link_probability(0, 1) == p1        # cached
        assert process.link_probability(1, 0) != p1        # directed

    def test_bursts_start_and_drop_frames(self):
        cfg = line_config(faults=FaultConfig(loss=LinkLossConfig(
            burst_rate_per_s=0.05, burst_mean_duration_s=5.0,
            burst_loss_probability=1.0)))
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        world.sim.run(until=100.0)
        # ~5 expected bursts over 100 s; at least one must have fired
        # and eaten heartbeat traffic.
        assert world.faults.loss_process.bursts_started > 0
        assert world.medium.frames_lost_fault > 0
        rerun = run_scenario(cfg)
        assert rerun.summary() == run_scenario(cfg).summary()

    def test_loss_counts_on_the_medium(self):
        cfg = line_config(faults=FaultConfig(loss=LinkLossConfig(
            link_loss_min=0.5, link_loss_max=0.5)))
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        world.sim.run(until=30.0)
        assert world.medium.frames_lost_fault > 0


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------

class TestFaultMetrics:
    def test_churn_reliability_never_below_plain(self):
        cfg = rwp_config(faults=FaultConfig(churn=ChurnConfig(
            mean_session_s=8.0, mean_rest_s=30.0)))
        result = run_scenario(cfg)
        assert result.churn_reliability() >= result.reliability()

    def test_recovery_latency_measured_on_catchup(self):
        # Victim is down when the event is published, recovers while it
        # is still valid, and catches up from a holder.
        cfg = line_config(faults=FaultConfig(plan=FaultPlan((
            FaultEvent(at=1.0, kind="crash", nodes=(3,), duration=20.0),
        ))), publications=(Publication(at=3.0, validity=90.0),))
        result = run_scenario(cfg)
        assert result.reliability() == 1.0
        assert result.recovery_latency_s() > 0.0

    def test_flapping_node_yields_one_sample_per_catchup(self):
        """A node that crashes, recovers, crashes and recovers again
        before catching up contributes exactly ONE latency sample,
        measured from the recovery that actually delivered — earlier
        recoveries must not duplicate it or fold downtime in."""
        from repro.metrics import recovery_latencies
        cfg = line_config(faults=FaultConfig(plan=FaultPlan((
            FaultEvent(at=1.0, kind="crash", nodes=(3,), duration=8.0),
            FaultEvent(at=12.0, kind="crash", nodes=(3,), duration=8.0),
        ))), publications=(Publication(at=3.0, validity=90.0),))
        result = run_scenario(cfg)
        # Both recoveries (9.0 and 20.0) happened inside the event's
        # validity window...
        assert [t for t, n in result.faults.recoveries if n == 3] == \
            [9.0, 20.0]
        samples = recovery_latencies(result.collector,
                                     result.published_events, [3],
                                     result.faults.recoveries)
        delivered_at = result.collector.deliveries_of(
            result.published_events[0].event_id)[3]
        if delivered_at <= 12.0:
            # Caught up during the up-gap: attributed to recovery #1.
            assert samples == [pytest.approx(delivered_at - 9.0)]
        else:
            # Caught up after the second recovery only.
            assert samples == [pytest.approx(delivered_at - 20.0)]

    def test_timeline_predicates(self):
        timeline = FaultTimeline(window=(0.0, 100.0), n_nodes=2)
        timeline.down_intervals[0] = [(10.0, 30.0), (50.0, 60.0)]
        assert timeline.downtime_s(0) == pytest.approx(30.0)
        assert timeline.downtime_s(1) == 0.0
        assert timeline.availability() == pytest.approx(1 - 30 / 200)
        assert timeline.was_up_during(0, 0.0, 100.0)
        assert not timeline.was_up_during(0, 12.0, 28.0)
        assert timeline.was_up_during(0, 29.0, 31.0)
        assert timeline.down_count_at(15.0) == 1
        assert timeline.down_count_at(40.0) == 0

    def test_timeline_travels_through_pickle(self):
        cfg = rwp_config(faults=FaultConfig(churn=ChurnConfig(
            mean_session_s=10.0, mean_rest_s=5.0)))
        result = run_scenario(cfg)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.summary() == result.summary()
        assert clone.faults.down_intervals == result.faults.down_intervals
        assert len(pickle.dumps(clone)) < 100_000


# --------------------------------------------------------------------------
# Medium support
# --------------------------------------------------------------------------

class TestSilenceRadioBilling:
    def test_duty_edges_inside_a_silence_window_stay_quiet(self):
        """The energy hook sees one sleep at silence start and one wake
        at silence end; duty-cycle sleep/wake edges *inside* the window
        must not re-notify (the radio is billed as sleeping
        throughout)."""
        world = build_world(line_config())
        for node in world.nodes:
            node.start()
        node = world.nodes[0]
        transitions = []
        node.on_radio_state = lambda n, state: transitions.append(state)
        node.silence()
        node.sleep()        # duty edge inside the window: silent
        node.wake()         # duty edge inside the window: silent
        node.unsilence()
        assert transitions == ["sleep", "wake"]

    def test_unsilence_while_duty_asleep_defers_the_wake(self):
        world = build_world(line_config())
        for node in world.nodes:
            node.start()
        node = world.nodes[0]
        transitions = []
        node.on_radio_state = lambda n, state: transitions.append(state)
        node.sleep()        # duty cycle first
        node.silence()      # already billed asleep: no extra sleep
        node.unsilence()    # still duty-asleep: no wake yet
        assert transitions == ["sleep"]
        node.wake()         # the duty cycler's own edge bills the wake
        assert transitions == ["sleep", "wake"]


class TestNodesWithin:
    def test_exact_membership_in_both_modes(self):
        for flat in (False, True):
            cfg = line_config(n=8)
            if flat:
                cfg = cfg.with_flat_medium()
            world = build_world(cfg)
            for node in world.nodes:
                node.start()
            members = world.medium.nodes_within(Vec2(0.0, 0.0), 120.0)
            assert [n.id for n in members] == [0, 1, 2]

    def test_radius_validation(self):
        world = build_world(line_config())
        with pytest.raises(ValueError):
            world.medium.nodes_within(Vec2(0.0, 0.0), -1.0)
