"""The lpbcast-style gossip baseline (repro.baselines.gossip).

Unit behaviour with a scripted host (rounds, fanout, bounded buffer,
dedup/parasite accounting) plus the acceptance-criterion property:
gossip results are seed-deterministic — every coin comes from the
node-local seeded rng streams, so re-running a config reproduces the
summary *exactly*, across serial, parallel and cached execution.
"""

from __future__ import annotations

import pytest

from repro.baselines import GossipConfig, GossipPubSub
from repro.harness.parallel import ParallelRunner
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, run_scenario)
from repro.net.messages import EventBatch

from tests.helpers import FakeHost, make_event


def attach(host: FakeHost, *topics: str, **config) -> GossipPubSub:
    proto = GossipPubSub(GossipConfig(jitter=0.0, **config))
    proto.attach(host)
    for t in topics:
        proto.subscribe(t)
    proto.on_start()
    return proto


def batch(sender: int, *events) -> EventBatch:
    return EventBatch(sender=sender, events=tuple(events))


class TestGossipUnit:
    def test_publish_broadcasts_and_delivers(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.publish(event)
        assert host.delivered == [event]
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_rounds_regossip_buffered_events(self):
        host = FakeHost()
        proto = attach(host, ".a", forward_probability=1.0)
        proto.on_message(batch(5, make_event(topic=".a.x", validity=60.0,
                                             now=host.now)))
        host.advance(3.5)
        assert len(host.sent_of_kind(EventBatch)) == 3   # one per round
        assert proto.counters.batches_sent == 3

    def test_fanout_caps_the_batch_to_newest(self):
        host = FakeHost()
        proto = attach(host, ".a", forward_probability=1.0, fanout=2)
        events = [make_event(seq=i, topic=".a.x", validity=60.0,
                             now=host.now) for i in range(5)]
        proto.on_message(batch(5, *events))
        host.advance(1.0)
        sent = host.sent_of_kind(EventBatch)[-1]
        assert sent.events == tuple(events[-2:])

    def test_buffer_bounded_oldest_evicted(self):
        host = FakeHost()
        proto = attach(host, ".a", buffer_capacity=3)
        events = [make_event(seq=i, topic=".a.x", validity=60.0,
                             now=host.now) for i in range(5)]
        proto.on_message(batch(5, *events))
        assert len(proto.buffered_event_ids) == 3
        assert events[0].event_id not in proto.buffered_event_ids
        assert events[-1].event_id in proto.buffered_event_ids

    def test_duplicates_and_parasites_counted(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_message(batch(6, event))
        assert proto.duplicates_dropped == 1
        parasite = make_event(seq=7, topic=".z", validity=60.0,
                              now=host.now)
        proto.on_message(batch(5, parasite))
        assert proto.parasites_dropped == 1
        assert host.delivered == [event]
        # Parasites are still buffered (routing-layer forwarding).
        assert parasite.event_id in proto.buffered_event_ids

    def test_expired_event_neither_buffered_nor_delivered(self):
        host = FakeHost()
        proto = attach(host, ".a")
        stale = make_event(topic=".a.x", validity=1.0, now=-5.0)
        proto.on_message(batch(5, stale))
        assert host.delivered == []
        assert stale.event_id not in proto.buffered_event_ids

    def test_crash_loses_buffer_and_history(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_stop()
        assert proto.buffered_event_ids == set()
        proto.on_start()
        proto.on_message(batch(5, event))      # re-learned after recovery
        assert len(host.delivered) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GossipConfig(period=0.0)
        with pytest.raises(ValueError):
            GossipConfig(forward_probability=1.5)
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)
        with pytest.raises(ValueError):
            GossipConfig(buffer_capacity=0)
        with pytest.raises(ValueError):
            GossipConfig(jitter=-0.1)


def gossip_scenario(seed: int = 0) -> ScenarioConfig:
    return ScenarioConfig(
        n_processes=8,
        mobility=RandomWaypointSpec(width=900.0, height=900.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=30.0, warmup=3.0, seed=seed,
        protocol="gossip",
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=25.0),))


class TestGossipDeterminism:
    def test_reruns_are_exactly_equal(self):
        """Acceptance criterion: dedicated seeded rng streams make every
        rerun reproduce the summary bit for bit."""
        a = run_scenario(gossip_scenario())
        b = run_scenario(gossip_scenario())
        assert a.summary() == b.summary()
        assert a.sim_events_processed == b.sim_events_processed
        assert a.protocol_counters() == b.protocol_counters()

    def test_seed_changes_the_outcome(self):
        a = run_scenario(gossip_scenario(seed=0))
        b = run_scenario(gossip_scenario(seed=1))
        assert a.summary() != b.summary()

    def test_serial_equals_parallel(self):
        config = gossip_scenario()
        serial = ParallelRunner(jobs=1).run_seeds(config, [0, 1, 2])
        with ParallelRunner(jobs=2) as pool:
            fanned = pool.run_seeds(config, [0, 1, 2])
        for ours, theirs in zip(serial.results, fanned.results):
            assert ours.summary() == theirs.summary()

    def test_gossip_probability_knob_changes_traffic(self):
        eager = run_scenario(gossip_scenario().with_changes(
            gossip=GossipConfig(forward_probability=1.0)))
        lazy = run_scenario(gossip_scenario().with_changes(
            gossip=GossipConfig(forward_probability=0.1)))
        assert eager.events_sent_per_process() > \
            lazy.events_sent_per_process()
