"""Unit tests for eviction policies (repro.core.gc) — paper Equation 1."""

from __future__ import annotations

import random

import pytest

from repro.core.events import Event, EventId, StoredEvent
from repro.core.gc import (FifoPolicy, RandomPolicy, RemainingValidityPolicy,
                           ValidityForwardPolicy, gc_score, make_policy)
from repro.core.topics import Topic


def row(seq: int, validity: float, forwarded: int,
        published_at: float = 0.0, stored_at: float = 0.0) -> StoredEvent:
    event = Event(EventId(1, seq), Topic(".t"), validity=validity,
                  published_at=published_at)
    return StoredEvent(event=event, stored_at=stored_at,
                       forward_count=forwarded)


class TestGcScore:
    def test_paper_worked_example(self):
        """A 2-min event forwarded once outlives a 5-min event forwarded
        five times (Section 4.4): the 5-min event has the lower score."""
        short_rarely = gc_score(120.0, 1)
        long_often = gc_score(300.0, 5)
        assert long_often < short_rarely

    def test_score_decreases_with_forwards(self):
        assert gc_score(60.0, 5) < gc_score(60.0, 1) < gc_score(60.0, 0)

    def test_never_forwarded_score_is_one(self):
        assert gc_score(42.0, 0) == 1.0

    def test_score_in_unit_interval(self):
        assert 0.0 < gc_score(1.0, 1000) < 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gc_score(0.0, 1)
        with pytest.raises(ValueError):
            gc_score(10.0, -1)


class TestValidityForwardPolicy:
    def test_selects_minimum_score(self):
        rows = [row(0, 120.0, 1), row(1, 300.0, 5), row(2, 60.0, 0)]
        victim = ValidityForwardPolicy().select_victim(rows, now=0.0)
        assert victim.event_id == EventId(1, 1)

    def test_empty_returns_none(self):
        assert ValidityForwardPolicy().select_victim([], now=0.0) is None

    def test_single_entry(self):
        only = row(0, 10.0, 0)
        assert ValidityForwardPolicy().select_victim([only], 0.0) is only


class TestRemainingValidityPolicy:
    def test_nearly_expired_preferred(self):
        fresh = row(0, 100.0, 0, published_at=90.0)      # 95 s left at t=95
        dying = row(1, 100.0, 0, published_at=0.0)       # 5 s left at t=95
        victim = RemainingValidityPolicy().select_victim(
            [fresh, dying], now=95.0)
        assert victim is dying

    def test_forward_count_still_matters(self):
        a = row(0, 100.0, 10, published_at=0.0)
        b = row(1, 100.0, 0, published_at=0.0)
        victim = RemainingValidityPolicy().select_victim([a, b], now=10.0)
        assert victim is a


class TestFifoPolicy:
    def test_oldest_stored_evicted(self):
        rows = [row(0, 10.0, 0, stored_at=5.0),
                row(1, 10.0, 0, stored_at=1.0),
                row(2, 10.0, 0, stored_at=3.0)]
        assert FifoPolicy().select_victim(rows, now=9.0).event_id == \
            EventId(1, 1)


class TestRandomPolicy:
    def test_requires_rng(self):
        with pytest.raises(ValueError):
            RandomPolicy().select_victim([row(0, 1.0, 0)], now=0.0)

    def test_selects_from_population(self):
        rows = [row(i, 10.0, 0) for i in range(5)]
        rng = random.Random(0)
        chosen = {RandomPolicy().select_victim(rows, 0.0, rng=rng).event_id
                  for _ in range(50)}
        assert len(chosen) > 1                       # actually random
        assert chosen <= {r.event_id for r in rows}  # never invents

    def test_empty_returns_none(self):
        assert RandomPolicy().select_victim([], 0.0,
                                            rng=random.Random(0)) is None


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("validity-forward", ValidityForwardPolicy),
        ("remaining-validity", RemainingValidityPolicy),
        ("fifo", FifoPolicy),
        ("random", RandomPolicy),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("lru")
