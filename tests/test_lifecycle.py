"""Attach/detach symmetry of the protocol lifecycle (repro.core.base).

The contract: ``attach`` twice raises, ``detach`` without an attach
raises, any host-needing use after a detach raises cleanly, and a
stopped+detached protocol instance can be re-attached — the clean path
for moving an instance across crash/recover cycles.
"""

from __future__ import annotations

import pytest

from repro.baselines import (GossipPubSub, InterestAwareFlooding,
                             NeighborInterestFlooding, SimpleFlooding)
from repro.core.protocol import FrugalPubSub

from tests.helpers import FakeHost, make_event

ALL_PROTOCOLS = [FrugalPubSub, SimpleFlooding, InterestAwareFlooding,
                 NeighborInterestFlooding, GossipPubSub]

IDS = [cls.__name__ for cls in ALL_PROTOCOLS]


@pytest.mark.parametrize("cls", ALL_PROTOCOLS, ids=IDS)
class TestAttachDetachSymmetry:
    def test_double_attach_raises(self, cls):
        proto = cls()
        proto.attach(FakeHost())
        with pytest.raises(RuntimeError, match="already attached"):
            proto.attach(FakeHost(host_id=1))

    def test_detach_without_attach_raises(self, cls):
        with pytest.raises(RuntimeError, match="not attached"):
            cls().detach()

    def test_double_detach_raises(self, cls):
        proto = cls()
        proto.attach(FakeHost())
        proto.detach()
        with pytest.raises(RuntimeError, match="not attached"):
            proto.detach()

    def test_detach_while_running_raises(self, cls):
        """Armed periodic tasks hold the old host; a running protocol
        must be stopped before its binding may be severed."""
        proto = cls()
        proto.attach(FakeHost())
        proto.subscribe(".a")
        proto.on_start()
        with pytest.raises(RuntimeError, match="on_stop"):
            proto.detach()
        proto.on_stop()
        proto.detach()                       # clean once stopped

    def test_publish_after_detach_raises(self, cls):
        proto = cls()
        proto.attach(FakeHost())
        proto.subscribe(".a")
        proto.on_start()
        proto.on_stop()
        proto.detach()
        with pytest.raises(RuntimeError, match="not attached"):
            proto.publish(make_event(topic=".a"))

    def test_reattach_after_detach_works(self, cls):
        """The crash/recover path: stop, detach, attach a fresh host,
        restart — the instance serves the new host from scratch."""
        proto = cls()
        first = FakeHost(host_id=0)
        proto.attach(first)
        proto.subscribe(".a")
        proto.on_start()
        proto.publish(make_event(topic=".a.x", validity=60.0,
                                 now=first.now))
        proto.on_stop()
        proto.detach()

        second = FakeHost(host_id=1)
        proto.attach(second)
        proto.on_start()
        event = make_event(seq=5, topic=".a.x", validity=60.0,
                           now=second.now)
        proto.publish(event)
        assert proto.host is second
        assert second.delivered == [event]
        proto.on_stop()

    def test_detached_instance_holds_no_host(self, cls):
        proto = cls()
        proto.attach(FakeHost())
        proto.detach()
        assert proto.host is None
