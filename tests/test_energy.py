"""Tests for the energy subsystem (repro.energy).

Covers the four layers: unit behaviour of batteries / power profiles /
the radio state machine, duty-cycle schedules, the accountant's
depletion handling (a drained node leaves the medium mid-run and stays
silent), and end-to-end scenario integration including determinism.
"""

from __future__ import annotations

import math

import pytest

from repro.energy import (Battery, DutyCycleConfig, EnergyAccountant,
                          EnergyConfig, EnergyModel, PowerProfile,
                          RadioState)
from repro.harness import ScenarioConfig, run_scenario
from repro.harness.scenario import build_world
from repro.net.radio import RadioConfig, dbm_to_mw
from repro.sim.kernel import Simulator


# --------------------------------------------------------------------------
# Battery
# --------------------------------------------------------------------------

class TestBattery:
    def test_mains_battery_never_drains(self):
        b = Battery()
        assert b.infinite
        assert b.discharge(1e9) == 1e9
        assert not b.drained
        assert b.time_to_empty_s(100.0) == math.inf

    def test_discharge_clamps_at_zero(self):
        b = Battery(capacity_j=10.0)
        assert b.discharge(4.0) == 4.0
        assert b.remaining_j == pytest.approx(6.0)
        assert b.discharge(100.0) == pytest.approx(6.0)
        assert b.remaining_j == 0.0
        assert b.drained

    def test_time_to_empty(self):
        b = Battery(capacity_j=10.0)
        assert b.time_to_empty_s(2.0) == pytest.approx(5.0)
        assert b.time_to_empty_s(0.0) == math.inf

    def test_recharge(self):
        b = Battery(capacity_j=10.0)
        b.discharge(10.0)
        b.recharge()
        assert b.remaining_j == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_j=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=5.0, initial_j=6.0)
        with pytest.raises(ValueError):
            Battery(capacity_j=5.0).discharge(-1.0)


# --------------------------------------------------------------------------
# Power profiles
# --------------------------------------------------------------------------

class TestPowerProfile:
    def test_draws_by_state(self):
        p = PowerProfile.wifi_80211b()
        assert p.draw_w(RadioState.TX) > p.draw_w(RadioState.RX)
        assert p.draw_w(RadioState.RX) > p.draw_w(RadioState.IDLE)
        assert p.draw_w(RadioState.IDLE) > p.draw_w(RadioState.SLEEP)
        assert p.draw_w(RadioState.OFF) == 0.0

    def test_from_radio_derives_tx_draw(self):
        radio = RadioConfig(tx_power_dbm=15.0, antenna_efficiency=0.8)
        p = PowerProfile.from_radio(radio, electronics_w=1.4)
        radiated_w = dbm_to_mw(15.0) / 1000.0
        assert p.tx_w == pytest.approx(1.4 + radiated_w / 0.8)
        # More transmit power -> strictly hungrier TX state.
        hot = PowerProfile.from_radio(RadioConfig(tx_power_dbm=20.0))
        assert hot.tx_w > PowerProfile.from_radio(
            RadioConfig(tx_power_dbm=15.0)).tx_w

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile(tx_w=-1.0)


# --------------------------------------------------------------------------
# Radio state machine
# --------------------------------------------------------------------------

def make_model(profile=None, capacity_j=None, on_depleted=None):
    sim = Simulator()
    model = EnergyModel(0, sim, profile or PowerProfile.power_save(),
                        battery=Battery(capacity_j),
                        on_depleted=on_depleted)
    return sim, model


class TestEnergyModel:
    def test_idle_charge_accrues_on_clock(self):
        sim, model = make_model()
        sim.run(until=10.0)
        model.finalize()
        idle_w = model.profile.idle_w
        assert model.total_joules == pytest.approx(10.0 * idle_w)
        assert model.joules_by_state[RadioState.IDLE] == \
            pytest.approx(10.0 * idle_w)

    def test_tx_window_charged_at_tx_draw(self):
        sim, model = make_model()
        model.note_tx(2.0)
        sim.run(until=10.0)
        model.finalize()
        p = model.profile
        assert model.joules_by_state[RadioState.TX] == \
            pytest.approx(2.0 * p.tx_w)
        assert model.joules_by_state[RadioState.IDLE] == \
            pytest.approx(8.0 * p.idle_w)

    def test_tx_beats_rx_half_duplex(self):
        """Overlapping TX and RX windows: TX wins, the overlap is never
        double-charged."""
        sim, model = make_model()
        model.note_tx(2.0)
        model.note_rx(3.0)
        sim.run(until=3.0)
        model.finalize()
        p = model.profile
        assert model.joules_by_state[RadioState.TX] == \
            pytest.approx(2.0 * p.tx_w)
        assert model.joules_by_state[RadioState.RX] == \
            pytest.approx(1.0 * p.rx_w)

    def test_sleep_draw_and_deaf_rx(self):
        sim, model = make_model()
        model.sleep()
        model.note_rx(1.0)          # deaf radio: no RX charge
        sim.run(until=4.0)
        model.wake()
        sim.run(until=10.0)
        model.finalize()
        p = model.profile
        assert model.joules_by_state[RadioState.RX] == 0.0
        assert model.joules_by_state[RadioState.SLEEP] == \
            pytest.approx(4.0 * p.sleep_w)
        assert model.joules_by_state[RadioState.IDLE] == \
            pytest.approx(6.0 * p.idle_w)

    def test_depletion_fires_at_exact_instant(self):
        deaths = []
        profile = PowerProfile(tx_w=2.0, rx_w=1.0, idle_w=0.5, sleep_w=0.0)
        sim, model = make_model(profile=profile, capacity_j=5.0,
                                on_depleted=deaths.append)
        sim.run(until=100.0)
        # 5 J at 0.5 W idle -> dead at exactly t=10.
        assert deaths == [0]
        assert model.depleted
        assert model.depleted_at == pytest.approx(10.0)
        assert model.total_joules == pytest.approx(5.0)

    def test_depletion_accounts_for_state_changes(self):
        deaths = []
        profile = PowerProfile(tx_w=2.0, rx_w=1.0, idle_w=0.5, sleep_w=0.0)
        sim, model = make_model(profile=profile, capacity_j=5.0,
                                on_depleted=deaths.append)
        # 2 s of TX (4 J) leaves 1 J = 2 s of idle: dead at t=4.
        model.note_tx(2.0)
        sim.run(until=100.0)
        assert model.depleted_at == pytest.approx(4.0)

    def test_off_model_stops_charging(self):
        sim, model = make_model(capacity_j=1.0)
        sim.run(until=100.0)
        model.finalize()
        assert model.state is RadioState.OFF
        total_at_death = model.total_joules
        model.note_tx(5.0)
        sim.run(until=200.0)
        model.finalize()
        assert model.total_joules == total_at_death

    def test_reset_tallies_recharges(self):
        sim, model = make_model(capacity_j=100.0)
        sim.run(until=10.0)
        model.reset_tallies(recharge=True)
        assert model.total_joules == 0.0
        assert model.battery.remaining_j == 100.0


# --------------------------------------------------------------------------
# Duty cycle
# --------------------------------------------------------------------------

class TestDutyCycleConfig:
    def test_always_on_is_disabled(self):
        cfg = DutyCycleConfig.always_on()
        assert not cfg.enabled
        assert cfg.is_awake_at(123.456)

    def test_awake_windows(self):
        cfg = DutyCycleConfig(period_s=1.0, awake_fraction=0.25)
        assert cfg.enabled
        assert cfg.is_awake_at(0.0)
        assert cfg.is_awake_at(0.2)
        assert not cfg.is_awake_at(0.25)
        assert not cfg.is_awake_at(0.9)
        assert cfg.is_awake_at(1.1)

    def test_next_wake_after(self):
        cfg = DutyCycleConfig(period_s=2.0, awake_fraction=0.5)
        assert cfg.next_wake_after(0.5) == 0.5     # already awake
        assert cfg.next_wake_after(1.5) == 2.0

    def test_heartbeat_aligned(self):
        cfg = DutyCycleConfig.heartbeat_aligned(3.0, awake_fraction=0.5)
        assert cfg.period_s == 3.0
        assert cfg.awake_s == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DutyCycleConfig(period_s=0.0)
        with pytest.raises(ValueError):
            DutyCycleConfig(awake_fraction=0.0)
        with pytest.raises(ValueError):
            DutyCycleConfig(awake_fraction=1.5)


# --------------------------------------------------------------------------
# Scenario integration
# --------------------------------------------------------------------------

def energy_demo(seed=1, **energy_kwargs) -> ScenarioConfig:
    cfg = ScenarioConfig.random_waypoint_demo(seed=seed)
    return cfg.with_changes(energy=EnergyConfig(
        profile=PowerProfile.power_save(), **energy_kwargs))


class TestScenarioIntegration:
    def test_uninstrumented_scenario_has_no_energy(self):
        result = run_scenario(ScenarioConfig.random_waypoint_demo(seed=1))
        assert result.energy is None
        assert "joules_per_node" not in result.summary()

    def test_energy_summary_columns(self):
        result = run_scenario(energy_demo())
        summary = result.summary()
        for key in ("joules_per_node", "joules_per_delivery", "lifetime_s",
                    "survivor_fraction", "survivor_reliability"):
            assert key in summary
        assert summary["joules_per_node"] > 0
        assert summary["survivor_fraction"] == 1.0
        assert summary["lifetime_s"] == result.config.duration

    def test_joules_split_across_states_sums_to_total(self):
        result = run_scenario(energy_demo())
        by_state = result.energy.joules_by_state()
        assert sum(by_state.values()) == pytest.approx(
            result.total_joules())
        assert by_state[RadioState.TX] > 0
        assert by_state[RadioState.RX] > 0
        assert by_state[RadioState.IDLE] > 0

    def test_drained_node_detaches_and_goes_silent(self):
        """The acceptance check: a dead battery removes the node from the
        medium mid-run; it transmits nothing afterwards."""
        # 20 J at 0.2 W idle floor dies around t=95 of a 130 s run.
        cfg = energy_demo(battery_capacity_j=20.0)
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        frames_after_death: dict = {}
        death_time: dict = {}

        def on_tx(sender_id, message, size):
            for nid, t in death_time.items():
                if sender_id == nid and world.sim.now > t:
                    frames_after_death[nid] = world.sim.now

        world.medium.on_transmit = on_tx
        world.sim.run(until=cfg.warmup + cfg.duration)
        world.energy.finalize()

        assert world.energy.deaths, "battery never drained"
        for t, nid in world.energy.deaths:
            death_time[nid] = t
            assert nid not in world.medium.nodes       # detached
            node = world.nodes[nid]
            assert node.depleted and not node.alive
        assert frames_after_death == {}
        # Depleted batteries are final: no recovery.
        dead_node = world.nodes[world.energy.deaths[0][1]]
        dead_node.recover()
        assert not dead_node.alive

    def test_warmup_depletion_revived_at_measurement_start(self):
        """A battery that cannot even idle through warm-up must not
        produce a silently-dead network reported as fully alive: the
        node gets a fresh battery at measurement start, rejoins the
        medium, and its (re-)death lands inside the window."""
        # 1 J at 0.2 W idle = 5 s of life; warm-up alone is 10 s.
        cfg = energy_demo(battery_capacity_j=1.0)
        result = run_scenario(cfg)
        assert result.total_joules() > 0.0         # metering restarted
        assert result.energy.deaths                # and deaths recorded
        for t, _ in result.energy.deaths:
            assert t >= cfg.warmup                 # in-window, not warm-up
        assert result.survivor_fraction() == 0.0
        assert 0.0 < result.network_lifetime_s() < cfg.duration
        # Every node burned (about) its fresh capacity, not zero.
        for model in result.energy.models.values():
            assert model.total_joules == pytest.approx(1.0, rel=1e-6)

    def test_reliability_over_survivors(self):
        cfg = energy_demo(battery_capacity_j=20.0)
        result = run_scenario(cfg)
        assert result.energy.deaths
        assert 0.0 <= result.survivor_reliability() <= 1.0
        assert result.survivor_fraction() < 1.0
        assert result.network_lifetime_s() < result.config.duration

    def test_duty_cycle_saves_energy(self):
        always_on = run_scenario(energy_demo())
        cycled = run_scenario(energy_demo(
            duty_cycle=DutyCycleConfig(period_s=1.0, awake_fraction=0.5)))
        assert cycled.joules_per_node() < always_on.joules_per_node()
        assert cycled.energy.joules_by_state()[RadioState.SLEEP] > 0

    def test_determinism_bit_identical_tallies(self):
        """Identical seeds must yield bit-identical joule tallies."""
        cfg = energy_demo(battery_capacity_j=20.0)
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        tallies_a = {i: m.joules_by_state for i, m in
                     a.energy.models.items()}
        tallies_b = {i: m.joules_by_state for i, m in
                     b.energy.models.items()}
        assert tallies_a == tallies_b          # exact, not approx
        assert a.energy.deaths == b.energy.deaths

    def test_energy_config_validation(self):
        with pytest.raises(ValueError):
            EnergyConfig(battery_capacity_j=-5.0)


# --------------------------------------------------------------------------
# Experiment functions
# --------------------------------------------------------------------------

class TestEnergyExperiments:
    @pytest.fixture(scope="class")
    def tiny(self):
        from tests.test_experiments import TINY
        return TINY

    def test_frugal_cheaper_per_delivery_than_flooding(self, tiny):
        """The headline claim, in joules: frugal spends measurably less
        energy per delivered event than neighbours'-interests flooding."""
        from repro.harness.experiments import energy_lifetime
        result = energy_lifetime(tiny, batteries=(None,))
        frugal = result.filter(protocol="frugal")[0]
        flood = result.filter(protocol="neighbor-flooding")[0]
        assert frugal["joules_per_delivery"] < flood["joules_per_delivery"]
        assert frugal["joules_per_node"] < flood["joules_per_node"]

    def test_dutycycle_ablation_shape(self, tiny):
        from repro.harness.experiments import ablation_dutycycle
        result = ablation_dutycycle(tiny, awake_fractions=(1.0, 0.5))
        assert len(result.rows) == 4          # 2 protocols x 2 fractions
        for protocol in ("frugal", "neighbor-flooding"):
            rows = result.filter(protocol=protocol)
            full = [r for r in rows if r["awake_fraction"] == 1.0][0]
            half = [r for r in rows if r["awake_fraction"] == 0.5][0]
            assert half["joules_per_node"] < full["joules_per_node"]
