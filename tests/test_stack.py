"""Per-layer unit suite for the composable protocol stack
(repro.core.stack).

Each layer is driven in isolation with the scripted :class:`FakeHost` —
no radio, mobility or medium — covering the behaviours the composed
protocols rely on: membership timeout GC and delay adaptation, store
eviction ordering (expired first, then Equation 1), delivery dedup and
parasite accounting, the back-off's cancel-on-overhear, and the gossip
rounds' coin/fanout behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.base import ProtocolCounters
from repro.core.config import FrugalConfig
from repro.core.stack import (BackoffForwarding, DeliveryLayer, EventStore,
                              GossipForwarding, HeartbeatMembership,
                              PeriodicFloodForwarding, TTLMembership)
from repro.core.topics import Topic
from repro.net.messages import EventBatch, Heartbeat

from tests.helpers import FakeHost, make_event


def frozenset_of(*topics: str):
    return frozenset(Topic(t) for t in topics)


# --------------------------------------------------------------------------
# Membership: HeartbeatMembership
# --------------------------------------------------------------------------

class TestHeartbeatMembership:
    def build(self, host, advertised=(".a",), on_new=None,
              **config_changes):
        defaults = dict(hb_delay=1.0, hb_upper_bound=1.0, hb_jitter=0.0)
        defaults.update(config_changes)
        config = FrugalConfig(**defaults)
        counters = ProtocolCounters()
        membership = HeartbeatMembership(
            config, counters,
            advertised=lambda: frozenset_of(*advertised),
            on_new_neighbor=on_new)
        membership.attach(host)
        return membership, counters

    def test_beacons_while_started_and_advertising(self):
        host = FakeHost()
        membership, counters = self.build(host)
        membership.start()
        host.advance(3.5)
        assert counters.heartbeats_sent == 3
        assert all(isinstance(m, Heartbeat)
                   for m in host.sent_of_kind(Heartbeat))

    def test_no_tasks_without_advertised_topics(self):
        host = FakeHost()
        membership, counters = self.build(host, advertised=())
        membership.start()
        host.advance(5.0)
        assert counters.heartbeats_sent == 0

    def test_matching_heartbeat_stored_nonmatching_ignored(self):
        host = FakeHost()
        membership, _ = self.build(host)
        membership.start()
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=None))
        membership.on_heartbeat(Heartbeat(sender=6,
                                          subscriptions=frozenset_of(".z"),
                                          speed=None))
        assert 5 in membership.table
        assert 6 not in membership.table

    def test_new_neighbor_callback_fires_once(self):
        host = FakeHost()
        seen = []
        membership, _ = self.build(
            host, on_new=lambda nid, subs: seen.append(nid))
        membership.start()
        hb = Heartbeat(sender=5, subscriptions=frozenset_of(".a"),
                       speed=None)
        membership.on_heartbeat(hb)
        membership.on_heartbeat(hb)       # refresh, not a new detection
        assert seen == [5]

    def test_timeout_gc_drops_silent_neighbors(self):
        """The periodic NGC task removes rows older than NGCDelay."""
        host = FakeHost()
        membership, _ = self.build(host)
        membership.start()
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=None))
        assert 5 in membership.table
        # NGCDelay = hb_delay * 2.5 = 2.5 s at the 1 s bound; a silent
        # neighbour must be collected by the tick after that.
        host.advance(6.0)
        assert 5 not in membership.table

    def test_refreshed_neighbor_survives_gc(self):
        host = FakeHost()
        membership, _ = self.build(host)
        membership.start()
        for _ in range(6):
            membership.on_heartbeat(Heartbeat(
                sender=5, subscriptions=frozenset_of(".a"), speed=None))
            host.advance(1.0)
        assert 5 in membership.table

    def test_adaptive_delay_follows_average_speed(self):
        """computeHBDelay (Fig. 8): x / avgSpeed, clamped to the bounds."""
        host = FakeHost(speed=20.0)
        membership, _ = self.build(host, hb_upper_bound=5.0)
        membership.start()
        assert membership.hb_delay == 1.0     # min(hb_delay, upper)
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=20.0))
        # avg speed 20 -> 40/20 = 2.0 s.
        assert membership.hb_delay == 2.0

    def test_adaptive_delay_clamped_to_upper_bound(self):
        host = FakeHost(speed=10.0)
        membership, _ = self.build(host)     # upper bound 1 s
        membership.start()
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=10.0))
        assert membership.hb_delay == 1.0    # 40/10 = 4 clamped to 1

    def test_stop_and_reset_clear_tasks_and_table(self):
        host = FakeHost()
        membership, counters = self.build(host)
        membership.start()
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=None))
        membership.stop()
        membership.reset()
        assert len(membership.table) == 0
        before = counters.heartbeats_sent
        host.advance(5.0)
        assert counters.heartbeats_sent == before


# --------------------------------------------------------------------------
# Membership: TTLMembership
# --------------------------------------------------------------------------

class TestTTLMembership:
    def build(self, host, ttl=2.5):
        counters = ProtocolCounters()
        membership = TTLMembership(counters, heartbeat_period=1.0, ttl=ttl,
                                   subscriptions=lambda: frozenset_of(".a"))
        membership.attach(host)
        return membership, counters

    def test_beacons_carry_subscriptions(self):
        host = FakeHost()
        membership, counters = self.build(host)
        membership.start()
        host.advance(2.5)
        beacons = host.sent_of_kind(Heartbeat)
        assert counters.heartbeats_sent == len(beacons) == 2
        assert beacons[0].subscriptions == frozenset_of(".a")
        assert beacons[0].speed is None

    def test_prune_drops_stale_rows_only(self):
        host = FakeHost()
        membership, _ = self.build(host, ttl=2.0)
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=None))
        host.advance(3.0)
        membership.on_heartbeat(Heartbeat(sender=6,
                                          subscriptions=frozenset_of(".a"),
                                          speed=None))
        membership.prune(host.now)
        assert 5 not in membership
        assert 6 in membership

    def test_any_interested_matches_subtopics(self):
        host = FakeHost()
        membership, _ = self.build(host)
        membership.on_heartbeat(Heartbeat(sender=5,
                                          subscriptions=frozenset_of(".a"),
                                          speed=None))
        assert membership.any_interested(Topic(".a.x"))
        assert not membership.any_interested(Topic(".z"))

    def test_validation(self):
        counters = ProtocolCounters()
        with pytest.raises(ValueError):
            TTLMembership(counters, heartbeat_period=0.0, ttl=1.0,
                          subscriptions=frozenset)
        with pytest.raises(ValueError):
            TTLMembership(counters, heartbeat_period=1.0, ttl=0.0,
                          subscriptions=frozenset)


# --------------------------------------------------------------------------
# Store: eviction ordering
# --------------------------------------------------------------------------

class TestEventStoreEviction:
    def test_expired_evicted_before_policy(self):
        store = EventStore.from_config(
            FrugalConfig(event_table_capacity=2), rng=None)
        expired = make_event(seq=0, validity=1.0, now=0.0)
        valid = make_event(seq=1, validity=100.0, now=0.0)
        store.store(expired, now=0.0)
        store.store(valid, now=0.0)
        # At t=5 the first event is expired; storing a third must evict
        # it (the cheap paper-prescribed fast path), not consult Eq. 1.
        store.store(make_event(seq=2, validity=100.0, now=5.0), now=5.0)
        assert expired.event_id not in store
        assert valid.event_id in store
        assert store.evictions_expired == 1
        assert store.evictions_policy == 0

    def test_equation1_when_all_valid(self):
        """The paper's worked example: a 2-minute event forwarded once
        outlives a 5-minute event forwarded five times."""
        store = EventStore.from_config(
            FrugalConfig(event_table_capacity=2), rng=None)
        short = make_event(seq=0, validity=120.0, now=0.0)
        long = make_event(seq=1, validity=300.0, now=0.0)
        store.store(short, now=0.0).forward_count = 1
        store.store(long, now=0.0).forward_count = 5
        store.store(make_event(seq=2, validity=60.0, now=1.0), now=1.0)
        assert long.event_id not in store      # 300/305 < 120/121
        assert short.event_id in store
        assert store.evictions_policy == 1

    def test_bounded_fifo_evicts_oldest(self):
        store = EventStore.bounded_fifo(2)
        first = make_event(seq=0, validity=100.0, now=0.0)
        second = make_event(seq=1, validity=100.0, now=0.0)
        store.store(first, now=0.0)
        store.store(second, now=1.0)
        store.store(make_event(seq=2, validity=100.0, now=2.0), now=2.0)
        assert first.event_id not in store
        assert second.event_id in store

    def test_unbounded_never_evicts(self):
        store = EventStore.unbounded()
        for seq in range(50):
            store.store(make_event(seq=seq, validity=100.0, now=0.0),
                        now=0.0)
        assert len(store) == 50
        assert store.event_ids() == {e for e in store.event_ids()}


# --------------------------------------------------------------------------
# Delivery
# --------------------------------------------------------------------------

class TestDeliveryLayer:
    def build(self, host):
        counters = ProtocolCounters()
        delivery = DeliveryLayer(counters)
        delivery.attach(host)
        delivery.subscribe(".a")
        return delivery, counters

    def test_deliver_once_dedups(self):
        host = FakeHost()
        delivery, counters = self.build(host)
        event = make_event(topic=".a.x")
        assert delivery.deliver_once(event) is True
        assert delivery.deliver_once(event) is False
        assert host.delivered == [event]
        assert counters.delivered_count == 1

    def test_unsubscribed_topic_not_delivered(self):
        host = FakeHost()
        delivery, counters = self.build(host)
        assert delivery.deliver_once(make_event(topic=".z")) is False
        assert host.delivered == []
        assert counters.delivered_count == 0

    def test_matches_respects_topic_tree(self):
        delivery, _ = self.build(FakeHost())
        assert delivery.matches(Topic(".a.x"))
        assert not delivery.matches(Topic(".z"))
        delivery.unsubscribe(".a")
        assert not delivery.matches(Topic(".a.x"))

    def test_reset_forgets_history_keeps_counters(self):
        host = FakeHost()
        delivery, counters = self.build(host)
        event = make_event(topic=".a.x")
        delivery.deliver_once(event)
        delivery.reset()
        assert delivery.deliver_once(event) is True   # re-deliverable
        assert counters.delivered_count == 2


# --------------------------------------------------------------------------
# Forwarding: BackoffForwarding
# --------------------------------------------------------------------------

class TestBackoffForwarding:
    def build(self, host, **config_changes):
        config = FrugalConfig(hb_delay=1.0, hb_upper_bound=1.0,
                              hb_jitter=0.0, backoff_jitter_frac=0.0,
                              **config_changes)
        counters = ProtocolCounters()
        membership = HeartbeatMembership(
            config, counters, advertised=lambda: frozenset_of(".a"))
        membership.attach(host)
        store = EventStore.from_config(config, rng=host.rng)
        forwarding = BackoffForwarding(config, counters, membership)
        forwarding.attach(host, store)
        return forwarding, membership, store, counters

    def add_needy_neighbor(self, membership, host, nid=5):
        membership.table.upsert(nid, frozenset_of(".a"), None, host.now)

    def test_retrieve_arms_backoff_and_sends_on_expiry(self):
        host = FakeHost()
        forwarding, membership, store, counters = self.build(host)
        self.add_needy_neighbor(membership, host)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        store.store(event, now=host.now)
        assert forwarding.retrieve() == [event.event_id]
        assert forwarding.pending
        host.advance(1.0)
        batches = host.sent_of_kind(EventBatch)
        assert len(batches) == 1
        assert batches[0].events == (event,)
        assert batches[0].neighbor_ids == (5,)
        assert counters.batches_sent == 1
        assert counters.events_forwarded == 1
        assert store.get(event.event_id).forward_count == 1
        assert membership.table.get(5).knows(event.event_id)

    def test_cancel_on_overhear_suppresses_send(self):
        """The suppression path: a pending back-off is cancelled (the
        composed protocol does this when an interesting event is
        overheard) and nothing goes out at the old expiry."""
        host = FakeHost()
        forwarding, membership, store, _ = self.build(host)
        self.add_needy_neighbor(membership, host)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        store.store(event, now=host.now)
        forwarding.retrieve()
        assert forwarding.pending
        forwarding.cancel()
        assert not forwarding.pending
        host.advance(2.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_nothing_to_send_for_knowing_neighbors(self):
        host = FakeHost()
        forwarding, membership, store, _ = self.build(host)
        self.add_needy_neighbor(membership, host)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        store.store(event, now=host.now)
        membership.table.record_known_event(5, event.event_id)
        assert forwarding.retrieve() == []
        assert not forwarding.pending

    def test_more_events_expire_sooner(self):
        """BODelay = HBDelay / (HB2BO * n): the best-provisioned
        forwarder wins the contention."""
        times = {}
        for n_events in (1, 4):
            host = FakeHost()
            forwarding, membership, store, _ = self.build(host)
            self.add_needy_neighbor(membership, host)
            for seq in range(n_events):
                store.store(make_event(seq=seq, topic=".a.x",
                                       validity=60.0, now=host.now),
                            now=host.now)
            forwarding.retrieve()
            times[n_events] = forwarding.timer.time - host.now
        assert times[4] < times[1]

    def test_send_recomputed_at_expiry(self):
        """Events learned-known during the back-off are not re-sent."""
        host = FakeHost()
        forwarding, membership, store, _ = self.build(host)
        self.add_needy_neighbor(membership, host)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        store.store(event, now=host.now)
        forwarding.retrieve()
        membership.table.record_known_event(5, event.event_id)
        host.advance(1.0)
        assert host.sent_of_kind(EventBatch) == []


# --------------------------------------------------------------------------
# Forwarding: PeriodicFloodForwarding
# --------------------------------------------------------------------------

class TestPeriodicFloodForwarding:
    def build(self, host, should_flood=lambda e: True):
        counters = ProtocolCounters()
        store = EventStore.unbounded()
        forwarding = PeriodicFloodForwarding(counters, 1.0, 0.0,
                                             should_flood)
        forwarding.attach(host, store)
        return forwarding, store, counters

    def test_ticks_flood_and_purge_expired(self):
        host = FakeHost()
        forwarding, store, counters = self.build(host)
        store.store(make_event(seq=0, validity=2.5, now=host.now),
                    now=host.now)
        forwarding.start()
        host.advance(5.0)
        # Ticks at 1 and 2 s flood; the 3 s tick finds it expired.
        assert counters.batches_sent == 2
        assert len(store) == 0

    def test_predicate_filters_the_flood(self):
        host = FakeHost()
        forwarding, store, counters = self.build(
            host, should_flood=lambda e: False)
        store.store(make_event(seq=0, validity=60.0, now=host.now),
                    now=host.now)
        forwarding.start()
        host.advance(3.0)
        assert counters.batches_sent == 0

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            PeriodicFloodForwarding(ProtocolCounters(), 0.0, 0.0,
                                    lambda e: True)


# --------------------------------------------------------------------------
# Forwarding: GossipForwarding
# --------------------------------------------------------------------------

class TestGossipForwarding:
    def build(self, host, probability=1.0, fanout=2):
        counters = ProtocolCounters()
        store = EventStore.bounded_fifo(8)
        forwarding = GossipForwarding(counters, 1.0, 0.0, probability,
                                      fanout)
        forwarding.attach(host, store)
        return forwarding, store, counters

    def test_round_sends_newest_fanout_events(self):
        host = FakeHost()
        forwarding, store, _ = self.build(host, probability=1.0, fanout=2)
        events = [make_event(seq=i, validity=60.0, now=host.now)
                  for i in range(4)]
        for e in events:
            store.store(e, now=host.now)
        forwarding.start()
        host.advance(1.0)
        batches = host.sent_of_kind(EventBatch)
        assert len(batches) == 1
        assert batches[0].events == tuple(events[-2:])   # the newest two

    def test_zero_probability_never_sends(self):
        host = FakeHost()
        forwarding, store, counters = self.build(host, probability=0.0)
        store.store(make_event(validity=60.0, now=host.now), now=host.now)
        forwarding.start()
        host.advance(10.0)
        assert counters.batches_sent == 0

    def test_empty_buffer_draws_no_coin(self):
        """Rounds with nothing to say must not consume rng state —
        otherwise an idle stretch would desynchronise paired runs."""
        host = FakeHost(seed=42)
        forwarding, _, _ = self.build(host, probability=1.0)
        forwarding.start()
        before = host.rng.getstate()
        host.advance(5.0)
        assert host.rng.getstate() == before

    def test_validation(self):
        counters = ProtocolCounters()
        with pytest.raises(ValueError):
            GossipForwarding(counters, 0.0, 0.0, 0.5, 2)
        with pytest.raises(ValueError):
            GossipForwarding(counters, 1.0, 0.0, 1.5, 2)
        with pytest.raises(ValueError):
            GossipForwarding(counters, 1.0, 0.0, 0.5, 0)
