"""Tests for the scenario harness (repro.harness.scenario)."""

from __future__ import annotations

import pytest

from repro.baselines import SimpleFlooding
from repro.core.protocol import FrugalPubSub
from repro.harness.scenario import (CitySectionSpec, Publication,
                                    RandomWaypointSpec, ScenarioConfig,
                                    StationarySpec, build_world,
                                    make_protocol, run_scenario,
                                    select_subscribers)
from repro.sim import RngRegistry


def tiny_config(**changes) -> ScenarioConfig:
    base = ScenarioConfig(
        n_processes=8,
        mobility=RandomWaypointSpec(width=600.0, height=600.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=60.0, warmup=5.0, seed=3,
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=40.0),))
    return base.with_changes(**changes)


class TestConfigValidation:
    def test_publication_outside_window_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            tiny_config(publications=(
                Publication(at=100.0, validity=10.0),))

    def test_bad_protocol_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            tiny_config(protocol="carrier-pigeon")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(subscriber_fraction=0.0)

    def test_bad_process_count_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(n_processes=0)


class TestMobilitySpecs:
    def test_rwp_spec_builds_random_waypoint(self):
        from repro.mobility import RandomWaypoint
        spec = RandomWaypointSpec(100.0, 100.0, 1.0, 5.0)
        assert isinstance(spec.build(0), RandomWaypoint)

    def test_rwp_spec_zero_speed_builds_stationary(self):
        from repro.mobility import Stationary
        spec = RandomWaypointSpec(100.0, 100.0, 0.0, 0.0)
        assert isinstance(spec.build(0), Stationary)

    def test_city_spec_shares_one_map(self):
        spec = CitySectionSpec(map_seed=7)
        assert spec.build(0).map is spec.build(1).map

    def test_stationary_spec(self):
        from repro.mobility import Stationary
        assert isinstance(StationarySpec(10.0, 10.0).build(0), Stationary)


class TestProtocolFactory:
    def test_known_protocols(self):
        assert isinstance(make_protocol(tiny_config()), FrugalPubSub)
        assert isinstance(
            make_protocol(tiny_config(protocol="simple-flooding")),
            SimpleFlooding)

    def test_registry_backed_names(self):
        from repro.baselines import GossipPubSub
        from repro.harness.scenario import known_protocols
        names = known_protocols()
        assert "gossip" in names and "frugal" in names
        assert "legacy-frugal" not in names          # hidden from sweeps
        assert "legacy-frugal" in known_protocols(include_hidden=True)
        assert isinstance(make_protocol(tiny_config(protocol="gossip")),
                          GossipPubSub)


class TestSubscriberSelection:
    def test_count_rounds_to_fraction(self):
        cfg = tiny_config(subscriber_fraction=0.5)
        subs = select_subscribers(cfg, RngRegistry(cfg.seed))
        assert len(subs) == 4

    def test_at_least_one_subscriber(self):
        cfg = tiny_config(subscriber_fraction=0.01)
        subs = select_subscribers(cfg, RngRegistry(cfg.seed))
        assert len(subs) == 1

    def test_deterministic_per_seed(self):
        cfg = tiny_config()
        a = select_subscribers(cfg, RngRegistry(5))
        b = select_subscribers(cfg, RngRegistry(5))
        c = select_subscribers(cfg, RngRegistry(6))
        assert a == b
        assert a != c or len(a) == cfg.n_processes


class TestBuildWorld:
    def test_world_is_fully_wired(self):
        cfg = tiny_config()
        sim, medium, collector, nodes, subscribers = build_world(cfg)
        assert len(nodes) == cfg.n_processes
        assert len(medium.nodes) == cfg.n_processes
        assert collector.node_count == cfg.n_processes
        assert all(not n.alive for n in nodes)    # not started yet

    def test_subscriber_topics_assigned(self):
        cfg = tiny_config()
        _, _, _, nodes, subscribers = build_world(cfg)
        from repro.core import Topic
        for node in nodes:
            topics = node.protocol.subscriptions
            if node.id in subscribers:
                assert Topic(cfg.event_topic) in topics
            else:
                assert Topic(cfg.other_topic) in topics


class TestRunScenario:
    def test_end_to_end_delivers(self):
        result = run_scenario(tiny_config())
        assert result.published_events
        assert 0.0 <= result.reliability() <= 1.0
        assert result.reliability() > 0.5      # dense little world

    def test_summary_keys(self):
        result = run_scenario(tiny_config())
        assert set(result.summary()) == {
            "reliability", "bandwidth_bytes", "events_sent",
            "duplicates", "parasites"}

    def test_same_seed_same_outcome(self):
        a = run_scenario(tiny_config())
        b = run_scenario(tiny_config())
        assert a.summary() == b.summary()

    def test_different_seed_different_traffic(self):
        a = run_scenario(tiny_config(seed=1))
        b = run_scenario(tiny_config(seed=2))
        assert a.collector.total_bytes() != b.collector.total_bytes()

    def test_warmup_traffic_not_counted(self):
        """A scenario with no publications and a warm-up covering almost
        the whole run counts almost nothing."""
        quiet = tiny_config(publications=(), warmup=60.0, duration=1.0)
        result = run_scenario(quiet)
        busy = tiny_config(publications=(), warmup=1.0, duration=60.0)
        other = run_scenario(busy)
        assert result.collector.total_bytes() < other.collector.total_bytes()

    def test_publisher_is_a_subscriber(self):
        result = run_scenario(tiny_config())
        publisher = result.published_events[0].event_id.publisher
        assert publisher in result.subscriber_ids

    def test_publisher_rotation_by_index(self):
        cfg = tiny_config(publications=(
            Publication(at=2.0, validity=30.0, publisher=0),
            Publication(at=4.0, validity=30.0, publisher=1)))
        result = run_scenario(cfg)
        pubs = [e.event_id.publisher for e in result.published_events]
        assert pubs[0] == result.subscriber_ids[0]
        assert pubs[1] == result.subscriber_ids[1]

    def test_protocol_counters_exclude_warmup(self):
        """Protocol counters must use the measurement window, like
        every other metric: a long warm-up adds no heartbeats."""
        cfg = tiny_config(warmup=20.0, duration=10.0,
                          publications=(Publication(at=1.0, validity=8.0),))
        counters = run_scenario(cfg).protocol_counters()
        assert counters.heartbeats_sent > 0
        # At the 1 s heartbeat bound, a lifetime tally would be about
        # n * (warmup + duration) beacons; the window bound is n *
        # duration (+ slack for jitter/rounding).
        assert counters.heartbeats_sent <= cfg.n_processes * 12.0

    def test_flooding_protocol_runs_too(self):
        result = run_scenario(tiny_config(protocol="simple-flooding"))
        assert result.reliability() == 1.0
        assert result.duplicates_per_process() > 10
