"""Unit tests for radio propagation math (repro.net.radio)."""

from __future__ import annotations

import math

import pytest

from repro.net.radio import (PathLossModel, RadioConfig, dbm_to_mw,
                             free_space_path_loss_db, mw_to_dbm,
                             two_ray_crossover_m, two_ray_path_loss_db)


class TestUnitConversions:
    def test_dbm_mw_round_trip(self):
        for dbm in (-90.0, -30.0, 0.0, 15.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_mw_dbm_round_trip(self):
        """The other direction: mw -> dbm -> mw."""
        for mw in (1e-9, 0.5, 1.0, 2.5, 100.0):
            assert dbm_to_mw(mw_to_dbm(mw)) == pytest.approx(mw)

    def test_known_points(self):
        assert dbm_to_mw(0.0) == 1.0
        assert dbm_to_mw(10.0) == pytest.approx(10.0)
        assert mw_to_dbm(100.0) == pytest.approx(20.0)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)


class TestPathLoss:
    def test_free_space_increases_20db_per_decade(self):
        f = 2.4e9
        l1 = free_space_path_loss_db(10.0, f)
        l2 = free_space_path_loss_db(100.0, f)
        assert l2 - l1 == pytest.approx(20.0)

    def test_two_ray_increases_40db_per_decade_beyond_crossover(self):
        f = 2.4e9
        cross = two_ray_crossover_m(f, 1.5, 1.5)
        l1 = two_ray_path_loss_db(cross * 2, f)
        l2 = two_ray_path_loss_db(cross * 20, f)
        assert l2 - l1 == pytest.approx(40.0)

    def test_two_ray_equals_free_space_below_crossover(self):
        f = 2.4e9
        cross = two_ray_crossover_m(f, 1.5, 1.5)
        d = cross / 2
        assert two_ray_path_loss_db(d, f) == \
            pytest.approx(free_space_path_loss_db(d, f))

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 2.4e9)
        with pytest.raises(ValueError):
            two_ray_path_loss_db(-5.0, 2.4e9)


class TestRadioConfig:
    def test_received_power_decreases_with_distance(self):
        cfg = RadioConfig()
        assert cfg.received_power_dbm(10.0) > cfg.received_power_dbm(100.0)

    def test_range_solves_link_budget(self):
        """At exactly the computed range the received power equals the
        sensitivity (within float tolerance)."""
        for model in (PathLossModel.FREE_SPACE, PathLossModel.TWO_RAY):
            cfg = RadioConfig(path_loss=model)
            r = cfg.communication_range_m()
            assert cfg.received_power_dbm(r) == \
                pytest.approx(cfg.sensitivity_dbm, abs=1e-6)

    def test_better_sensitivity_longer_range(self):
        near = RadioConfig(sensitivity_dbm=-65.0)
        far = RadioConfig(sensitivity_dbm=-93.0)
        assert far.communication_range_m() > near.communication_range_m()

    def test_range_override_pins_range(self):
        cfg = RadioConfig(range_override_m=442.0)
        assert cfg.communication_range_m() == 442.0

    def test_paper_presets(self):
        rwp = RadioConfig.paper_random_waypoint()
        assert rwp.communication_range_m() == 442.0
        assert rwp.tx_power_dbm == 15.0
        assert rwp.sensitivity_dbm == -93.0
        city = RadioConfig.paper_city_section()
        assert city.communication_range_m() == 44.0
        assert city.sensitivity_dbm == -65.0

    def test_bluetooth_preset(self):
        """The paper's other example MAC: class-2 power, ~10 m radius."""
        bt = RadioConfig.bluetooth()
        assert bt.tx_power_dbm == 4.0
        assert bt.communication_range_m() == 10.0
        assert bt.data_rate_bps == 1_000_000.0
        # 2.5 mW class-2 budget, to float precision.
        assert dbm_to_mw(bt.tx_power_dbm) == pytest.approx(2.5, rel=0.01)
        # Far shorter reach than the 802.11b presets at the same rate.
        assert bt.communication_range_m() < RadioConfig.\
            paper_random_waypoint().communication_range_m()

    def test_two_ray_range_below_crossover_uses_free_space(self):
        """A weak link budget dies before the two-ray crossover, so the
        solved range must come from the free-space branch."""
        cfg = RadioConfig(sensitivity_dbm=-60.0,
                          path_loss=PathLossModel.TWO_RAY)
        cross = two_ray_crossover_m(cfg.frequency_hz,
                                    cfg.antenna_height_m,
                                    cfg.antenna_height_m)
        r = cfg.communication_range_m()
        assert r < cross
        free = RadioConfig(sensitivity_dbm=-60.0,
                           path_loss=PathLossModel.FREE_SPACE)
        assert r == pytest.approx(free.communication_range_m())

    def test_two_ray_range_beyond_crossover_uses_two_ray_branch(self):
        """The default budget reaches past the crossover: the range must
        differ from the free-space solution and still close the budget."""
        cfg = RadioConfig(path_loss=PathLossModel.TWO_RAY)
        cross = two_ray_crossover_m(cfg.frequency_hz,
                                    cfg.antenna_height_m,
                                    cfg.antenna_height_m)
        r = cfg.communication_range_m()
        assert r > cross
        free = RadioConfig(path_loss=PathLossModel.FREE_SPACE)
        assert r < free.communication_range_m()
        assert cfg.received_power_dbm(r) == \
            pytest.approx(cfg.sensitivity_dbm, abs=1e-6)

    def test_paper_rates_table(self):
        assert RadioConfig.paper_random_waypoint(
            11_000_000.0).communication_range_m() == 273.0
        with pytest.raises(ValueError):
            RadioConfig.paper_random_waypoint(5_000_000.0)

    def test_transmission_duration(self):
        cfg = RadioConfig(data_rate_bps=1_000_000.0)
        # 400 bytes at 1 Mbit/s = 3.2 ms + 192 us preamble.
        assert cfg.transmission_duration_s(400) == \
            pytest.approx(192e-6 + 3.2e-3)
        assert cfg.transmission_duration_s(0) == pytest.approx(192e-6)

    def test_faster_rate_shorter_airtime(self):
        slow = RadioConfig(data_rate_bps=1e6)
        fast = RadioConfig(data_rate_bps=11e6)
        assert fast.transmission_duration_s(400) < \
            slow.transmission_duration_s(400)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioConfig(data_rate_bps=0.0)
        with pytest.raises(ValueError):
            RadioConfig(antenna_efficiency=0.0)
        with pytest.raises(ValueError):
            RadioConfig(range_override_m=-1.0)
        cfg = RadioConfig()
        with pytest.raises(ValueError):
            cfg.transmission_duration_s(-1)
