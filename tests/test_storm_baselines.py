"""Unit + integration tests for the broadcast-storm baselines
(repro.baselines.storm)."""

from __future__ import annotations

import pytest

from repro.baselines import CounterFlooding, GossipFlooding
from repro.core.events import EventFactory
from repro.harness.scenario import make_protocol
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.net.messages import EventBatch
from repro.sim.space import Vec2

from tests.helpers import FakeHost, make_event


def attach(cls, host, *topics, **kwargs):
    proto = cls(**kwargs)
    proto.attach(host)
    for t in topics:
        proto.subscribe(t)
    proto.on_start()
    return proto


def batch(sender, *events):
    return EventBatch(sender=sender, events=tuple(events))


class TestGossipFlooding:
    def test_publish_always_broadcasts(self):
        host = FakeHost()
        proto = attach(GossipFlooding, host, ".a", probability=0.0)
        proto.publish(make_event(topic=".a.x", validity=60.0, now=host.now))
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_probability_one_always_forwards(self):
        host = FakeHost()
        proto = attach(GossipFlooding, host, ".a", probability=1.0)
        proto.on_message(batch(5, make_event(topic=".a.x", validity=60.0,
                                             now=host.now)))
        host.advance(0.2)
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_probability_zero_never_forwards(self):
        host = FakeHost()
        proto = attach(GossipFlooding, host, ".a", probability=0.0)
        proto.on_message(batch(5, make_event(topic=".a.x", validity=60.0,
                                             now=host.now)))
        host.advance(1.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_forwards_at_most_once(self):
        host = FakeHost()
        proto = attach(GossipFlooding, host, ".a", probability=1.0)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_message(batch(6, event))
        proto.on_message(batch(7, event))
        host.advance(1.0)
        assert len(host.sent_of_kind(EventBatch)) == 1
        assert proto.duplicates_dropped == 2

    def test_forwards_parasites_but_does_not_deliver(self):
        """Storm schemes are routing-layer: interests gate delivery only."""
        host = FakeHost()
        proto = attach(GossipFlooding, host, ".a", probability=1.0)
        parasite = make_event(topic=".z", validity=60.0, now=host.now)
        proto.on_message(batch(5, parasite))
        host.advance(0.2)
        assert host.delivered == []
        assert proto.parasites_dropped == 1
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_expired_event_not_forwarded(self):
        host = FakeHost()
        proto = attach(GossipFlooding, host, ".a", probability=1.0,
                       forward_delay_max=0.0)
        event = make_event(topic=".a.x", validity=2.0, now=0.0)
        host.advance(5.0)
        proto.on_message(batch(5, event))
        host.advance(0.2)
        assert host.sent_of_kind(EventBatch) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipFlooding(probability=1.5)
        with pytest.raises(ValueError):
            GossipFlooding(forward_delay_max=-1.0)


class TestCounterFlooding:
    def test_quiet_neighborhood_triggers_rebroadcast(self):
        host = FakeHost()
        proto = attach(CounterFlooding, host, ".a", threshold=3)
        proto.on_message(batch(5, make_event(topic=".a.x", validity=60.0,
                                             now=host.now)))
        host.advance(1.0)
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_busy_neighborhood_suppresses(self):
        host = FakeHost()
        proto = attach(CounterFlooding, host, ".a", threshold=3)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_message(batch(6, event))   # copies heard during assessment
        proto.on_message(batch(7, event))
        host.advance(1.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_threshold_boundary(self):
        host = FakeHost()
        proto = attach(CounterFlooding, host, ".a", threshold=2)
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_message(batch(6, event))   # exactly threshold: suppress
        host.advance(1.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_delivers_exactly_once(self):
        host = FakeHost()
        proto = attach(CounterFlooding, host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(batch(5, event))
        proto.on_message(batch(6, event))
        assert len(host.delivered) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterFlooding(threshold=0)
        with pytest.raises(ValueError):
            CounterFlooding(assessment_delay_max=0.0)


class TestScenarioIntegration:
    def test_protocol_factory_builds_storm_schemes(self):
        from repro.harness.scenario import ScenarioConfig, \
            RandomWaypointSpec, Publication
        base = ScenarioConfig(
            n_processes=4,
            mobility=RandomWaypointSpec(300.0, 300.0, 5.0, 5.0),
            duration=30.0,
            publications=(Publication(at=1.0, validity=20.0),),
            gossip_probability=0.8, counter_threshold=4)
        gossip = make_protocol(base.with_changes(
            protocol="gossip-flooding"))
        assert isinstance(gossip, GossipFlooding)
        assert gossip.probability == 0.8
        counter = make_protocol(base.with_changes(
            protocol="counter-flooding"))
        assert isinstance(counter, CounterFlooding)
        assert counter.threshold == 4

    def test_gossip_disseminates_in_connected_cluster(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=200.0),
                                rng=rngs.stream("medium"))
        nodes = []
        for i in range(6):
            proto = GossipFlooding(probability=1.0)
            node = Node(i, sim, medium,
                        Stationary(position=Vec2(i * 60.0, 0.0)), proto,
                        rngs.stream("node", i))
            proto.subscribe(".a")
            nodes.append(node)
        for n in nodes:
            n.start()
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=10.0)
        delivered = sum(1 for n in nodes if event in n.delivered_events)
        assert delivered == 6
