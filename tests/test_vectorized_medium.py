"""Paired verification of the vectorized frame engine.

The vectorized stack (numpy batch engine + coalesced timer wheel) claims
**bit-identity** with the scalar reference, not statistical closeness.
This suite holds it to that claim:

* exact ``==`` on summaries across all five scenario families — fig11
  (random waypoint), fig14 (city section), fig17 (flooding sweep
  representative), energy-lifetime and rwp-churn-faults — on the full
  equality ladder vectorized == grid-scalar == flat-scalar;
* engine invariance: serial == ``jobs=4`` == cached for the vectorized
  configs;
* property-style randomized frames: scripted broadcast storms over
  random node layouts must produce identical per-node delivery traces
  and identical collision/loss counters under both engines;
* randomized range queries against a moving population must return the
  identical node sets (``nodes_within``), vectorized vs manual scalar
  re-computation.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.energy import DutyCycleConfig, EnergyConfig, PowerProfile
from repro.faults import (ChurnConfig, FaultConfig, FaultEvent, FaultPlan,
                          LinkLossConfig, RegionalOutage)
from repro.harness.cache import ResultCache
from repro.harness.parallel import ParallelRunner
from repro.harness.scenario import (CitySectionSpec, Publication,
                                    RandomWaypointSpec, ScenarioConfig,
                                    run_scenario)
from repro.net import RadioConfig
from repro.net.medium import MediumConfig, WirelessMedium
from repro.net.messages import Heartbeat
from repro.sim import Simulator
from repro.sim.batch import HAVE_NUMPY
from repro.sim.space import Vec2


def _fig11() -> ScenarioConfig:
    return ScenarioConfig(
        n_processes=10,
        mobility=RandomWaypointSpec(width=1000.0, height=1000.0,
                                    speed_min=5.0, speed_max=15.0),
        duration=40.0, warmup=4.0,
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=30.0),))


def _fig14() -> ScenarioConfig:
    return ScenarioConfig(
        n_processes=6,
        mobility=CitySectionSpec(),
        duration=30.0, warmup=5.0,
        radio=RadioConfig.paper_city_section(),
        publications=(Publication(at=2.0, validity=25.0),))


def _fig17() -> ScenarioConfig:
    # The frugality-sweep family's non-frugal representative: flooding
    # stresses the medium with the densest traffic of any protocol.
    return _fig11().with_changes(protocol="simple-flooding",
                                 flood_period=1.0)


def _energy_lifetime() -> ScenarioConfig:
    return _fig11().with_changes(energy=EnergyConfig(
        profile=PowerProfile.power_save(),
        battery_capacity_j=30.0,
        duty_cycle=DutyCycleConfig.heartbeat_aligned(1.0, 0.5)))


def _rwp_churn_faults() -> ScenarioConfig:
    return _fig11().with_changes(faults=FaultConfig(
        plan=FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.25,
                                   duration=10.0),)),
        churn=ChurnConfig(mean_session_s=15.0, mean_rest_s=5.0,
                          fraction=0.5),
        outages=(RegionalOutage(at=8.0, duration=6.0,
                                center=(450.0, 450.0), radius_m=250.0),),
        loss=LinkLossConfig(link_loss_min=0.05, link_loss_max=0.15,
                            burst_rate_per_s=0.05,
                            burst_mean_duration_s=2.0,
                            burst_loss_probability=0.8)))


FAMILIES = {
    "fig11": _fig11,
    "fig14": _fig14,
    "fig17": _fig17,
    "energy-lifetime": _energy_lifetime,
    "rwp-churn-faults": _rwp_churn_faults,
}

SEEDS = [0, 1]


class TestEqualityLadder:
    """vectorized == grid-scalar == flat-scalar, exactly, everywhere."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_summaries_bit_identical(self, family, seed):
        cfg = FAMILIES[family]().with_changes(seed=seed)
        vec = run_scenario(cfg).summary()
        grid = run_scenario(cfg.with_scalar_engine()).summary()
        flat = run_scenario(cfg.with_flat_medium()).summary()
        assert vec == grid, f"{family}/s{seed}: vectorized != grid-scalar"
        assert vec == flat, f"{family}/s{seed}: vectorized != flat-scalar"

    def test_default_config_is_vectorized(self):
        """The accelerated engine is the default, and the scalar rungs
        are selectable — the pairing above is meaningful."""
        cfg = _fig11()
        assert cfg.medium.vectorized and cfg.medium.spatial_index
        assert cfg.coalesced_timers
        assert not cfg.with_scalar_engine().medium.vectorized
        flat = cfg.with_flat_medium()
        assert not flat.medium.spatial_index
        assert not flat.medium.vectorized
        assert not flat.coalesced_timers


class TestEngineInvariance:
    """The vectorized stack under the execution engine: fan-out and
    cache replay must be invisible."""

    def test_serial_jobs4_cached_identical(self, tmp_path):
        cfg = _fig11()
        serial = ParallelRunner(jobs=1).run_seeds(cfg, SEEDS)
        with ParallelRunner(jobs=4) as pool:
            fanned = pool.run_seeds(cfg, SEEDS)
        cache = ResultCache(tmp_path / "cache")
        warm = ParallelRunner(jobs=1, cache=cache)
        first = warm.run_seeds(cfg, SEEDS)
        replay = warm.run_seeds(cfg, SEEDS)
        for multi in (fanned, first, replay):
            assert [r.summary() for r in multi.results] == \
                [r.summary() for r in serial.results]
        assert warm.stats.executed == len(SEEDS)  # second pass ran nothing


class _Stub:
    """A parked test node: fixed position, always listening, records
    every received payload."""

    def __init__(self, node_id, pos):
        self.id = node_id
        self.pos = pos
        self.alive = True
        self.asleep = False
        self.silenced = False
        self.received = []

    @property
    def listening(self):
        return self.alive and not self.asleep and not self.silenced

    def position(self):
        return self.pos

    def receive(self, message):
        self.received.append((message.sender, message.kind))


def _storm_trace(cfg: MediumConfig, seed: int):
    """Run a randomized broadcast storm and capture its full outcome."""
    layout_rng = random.Random(1000 + seed)
    sim = Simulator()
    medium = WirelessMedium(sim, RadioConfig(range_override_m=150.0),
                            config=cfg, rng=random.Random(seed))
    nodes = [_Stub(i, Vec2(layout_rng.uniform(0, 600),
                           layout_rng.uniform(0, 600)))
             for i in range(24)]
    for node in nodes:
        medium.register(node)
    schedule_rng = random.Random(2000 + seed)
    for _ in range(120):
        at = schedule_rng.uniform(0.0, 0.5)
        sender = schedule_rng.randrange(len(nodes))
        sim.call_at(at, medium.broadcast, sender,
                    Heartbeat(sender=sender,
                              subscriptions=frozenset((".t",))))
    sim.run_until_idle()
    return {
        "received": {n.id: n.received for n in nodes},
        "sent": medium.frames_sent,
        "delivered": medium.frames_delivered,
        "collided": medium.frames_collided,
        "lost": medium.frames_lost_random,
    }


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized engine needs numpy")
class TestRandomizedFrames:
    """Property-style: batched and scalar receiver/collision resolution
    agree frame for frame on randomized storms."""

    @pytest.mark.parametrize("seed", range(6))
    def test_storm_traces_identical(self, seed):
        vec = MediumConfig(csma_enabled=False)      # overlap guaranteed
        flat = MediumConfig(csma_enabled=False, spatial_index=False,
                            vectorized=False)
        assert _storm_trace(vec, seed) == _storm_trace(flat, seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_storm_traces_identical_with_csma_and_loss(self, seed):
        vec = MediumConfig(frame_loss_probability=0.2)
        flat = MediumConfig(frame_loss_probability=0.2,
                            spatial_index=False, vectorized=False)
        assert _storm_trace(vec, seed) == _storm_trace(flat, seed)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized engine needs numpy")
class TestRangeQueries:
    """nodes_within: batched interpolation == per-node scalar recompute,
    on a population that is actually moving."""

    def test_moving_population_queries_match_scalar_recompute(self):
        from repro.harness.scenario import build_world

        cfg = _fig11().with_changes(n_processes=30, seed=7)
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        query_rng = random.Random(42)
        checked = 0
        for stop_at in (3.0, 9.5, 17.25):
            world.sim.run(until=stop_at)
            medium = world.medium
            assert medium._legs is not None   # vectorized engine active
            for _ in range(20):
                center = Vec2(query_rng.uniform(0, 1000),
                              query_rng.uniform(0, 1000))
                radius = query_rng.uniform(10.0, 500.0)
                got = medium.nodes_within(center, radius)
                want = [node for node in
                        sorted(medium.nodes.values(), key=lambda n: n.id)
                        if node.position().distance_to(center) <= radius]
                assert got == want
                checked += len(want)
        assert checked > 50   # the queries actually exercised hits


class TestNodesWithinFlatFallback:
    """Regression for the flat-fallback hot path: the sorted node list
    is maintained incrementally, and out-of-order (re-)registrations
    must keep query results and ordering unchanged."""

    def _flat_medium(self):
        sim = Simulator()
        cfg = MediumConfig(spatial_index=False, vectorized=False)
        return sim, WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                   config=cfg, rng=random.Random(0))

    def test_results_sorted_after_out_of_order_registration(self):
        _, medium = self._flat_medium()
        for node_id in (5, 1, 9, 3, 7):
            medium.register(_Stub(node_id, Vec2(float(node_id), 0.0)))
        got = medium.nodes_within(Vec2(0.0, 0.0), 50.0)
        assert [n.id for n in got] == [1, 3, 5, 7, 9]
        assert got == [node for _, node in sorted(medium.nodes.items())]

    def test_unregister_then_reregister_keeps_order(self):
        _, medium = self._flat_medium()
        for node_id in range(6):
            medium.register(_Stub(node_id, Vec2(float(node_id), 0.0)))
        medium.unregister(2)
        medium.unregister(5)
        medium.register(_Stub(2, Vec2(2.0, 0.0)))   # repower-style rejoin
        got = medium.nodes_within(Vec2(0.0, 0.0), 50.0)
        assert [n.id for n in got] == [0, 1, 2, 3, 4]
        assert got == [node for _, node in sorted(medium.nodes.items())]

    def test_radius_filter_still_applies(self):
        _, medium = self._flat_medium()
        for node_id in range(4):
            medium.register(_Stub(node_id, Vec2(30.0 * node_id, 0.0)))
        got = medium.nodes_within(Vec2(0.0, 0.0), 45.0)
        assert [n.id for n in got] == [0, 1]
        assert all(n.position().distance_to(Vec2(0.0, 0.0)) <= 45.0
                   for n in got)


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized engine needs numpy")
class TestBatchPrimitives:
    """Direct unit checks of the numpy engine's exactness guarantees."""

    def test_legtable_interpolation_is_bitwise_exact(self):
        from repro.sim.batch import LegTable

        rng = random.Random(11)
        table = LegTable()
        legs = {}
        for i in range(40):
            x0, y0 = rng.uniform(0, 900), rng.uniform(0, 900)
            x1, y1 = rng.uniform(0, 900), rng.uniform(0, 900)
            t0 = rng.uniform(0, 5)
            dur = rng.uniform(0.5, 30.0)
            legs[i] = (x0, y0, x1, y1, t0, dur)
            table.note(i, legs[i])
        now = 12.5
        hits = table.audible(sorted(legs), now, 450.0, 450.0, 300.0)
        hit_ids = [i for i, _ in hits]
        for i, (x0, y0, x1, y1, t0, dur) in sorted(legs.items()):
            u = min(1.0, max(0.0, (now - t0) / dur))
            px, py = x0 + (x1 - x0) * u, y0 + (y1 - y0) * u
            inside = math.hypot(px - 450.0, py - 450.0) <= 300.0
            assert (i in hit_ids) == inside
            if inside:
                pos = dict(hits)[i]
                assert (pos.x, pos.y) == (px, py)   # bitwise, not approx

    def test_txlog_verdicts_match_scalar_predicate(self):
        from repro.sim.batch import TxLog

        rng = random.Random(13)
        log = TxLog(horizon_s=1.0)
        frames = []
        for _ in range(30):
            sender = rng.randrange(10)
            x, y = rng.uniform(0, 400), rng.uniform(0, 400)
            start = rng.uniform(0.0, 0.05)
            end = start + rng.uniform(0.001, 0.02)
            seq = log.add(sender, x, y, 150.0, start, end)
            frames.append((seq, sender, x, y, start, end))
        tx_seq, _, _, _, tx_start, tx_end = frames[7]
        receivers = [(i, Vec2(rng.uniform(0, 400), rng.uniform(0, 400)))
                     for i in range(12)]
        verdicts = log.corrupt_verdicts(
            tx_seq, tx_start, tx_end,
            [i for i, _ in receivers], [p for _, p in receivers])
        for k, (rx_id, rx_pos) in enumerate(receivers):
            expect = any(
                (start < tx_end and end > tx_start and seq != tx_seq)
                and (sender == rx_id
                     or math.hypot(x - rx_pos.x, y - rx_pos.y) <= 150.0)
                for seq, sender, x, y, start, end in frames)
            assert bool(verdicts[k]) == expect


class TestTimerCoalescingCross:
    """The timer wheel crossed with the engine ladder: six combos.

    ``with_scalar_engine()`` / ``with_flat_medium()`` force
    ``coalesced_timers=False``, so the ladder tests above never exercise
    the wheel *on* the scalar rungs (or off the vectorized one).  This
    suite builds all six (engine x wheel) combinations explicitly via
    ``with_changes`` and requires the full receive trace — summaries,
    per-event reports and the raw delivery-time map — to be identical:
    timer coalescing must be a pure scheduling optimisation on every
    rung, not just the default one.
    """

    @staticmethod
    def _combos(cfg: ScenarioConfig) -> dict:
        from dataclasses import replace
        grid = replace(cfg.medium, vectorized=False)
        flat = replace(cfg.medium, vectorized=False, spatial_index=False)
        return {
            "vec+wheel": cfg.with_changes(coalesced_timers=True),
            "vec": cfg.with_changes(coalesced_timers=False),
            "grid+wheel": cfg.with_changes(medium=grid,
                                           coalesced_timers=True),
            "grid": cfg.with_changes(medium=grid,
                                     coalesced_timers=False),
            "flat+wheel": cfg.with_changes(medium=flat,
                                           coalesced_timers=True),
            "flat": cfg.with_changes(medium=flat,
                                     coalesced_timers=False),
        }

    @pytest.mark.parametrize("family", ["fig11", "fig17",
                                        "rwp-churn-faults"])
    def test_wheel_is_invisible_on_every_rung(self, family):
        combos = self._combos(FAMILIES[family]())
        baseline = run_scenario(combos["vec+wheel"])
        for name, combo in combos.items():
            if name == "vec+wheel":
                continue
            got = run_scenario(combo)
            assert got.summary() == baseline.summary(), \
                f"{family}: {name} diverged from vec+wheel"
            assert got.per_event_reports() == \
                baseline.per_event_reports(), \
                f"{family}: {name} per-event reports diverged"
            assert got.collector.delivery_times == \
                baseline.collector.delivery_times, \
                f"{family}: {name} delivery traces diverged"

    def test_explicit_combos_cover_the_forced_gap(self):
        """The helper really reaches the combos the canned switches
        exclude: a scalar rung with the wheel on, and vec without it."""
        combos = self._combos(_fig11())
        assert not combos["grid+wheel"].medium.vectorized
        assert combos["grid+wheel"].coalesced_timers
        assert not combos["flat+wheel"].medium.spatial_index
        assert combos["flat+wheel"].coalesced_timers
        assert combos["vec"].medium.vectorized
        assert not combos["vec"].coalesced_timers
