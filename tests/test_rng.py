"""Unit tests for seeded RNG streams (repro.sim.rng)."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_differs_by_root_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_key(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "node", 1) != derive_seed(1, "node", 2)

    def test_64_bit_range(self):
        s = derive_seed(123, "medium")
        assert 0 <= s < 2 ** 64


class TestRngRegistry:
    def test_same_key_returns_same_stream_object(self, rngs):
        assert rngs.stream("node", 1) is rngs.stream("node", 1)

    def test_different_keys_different_streams(self, rngs):
        a = rngs.stream("node", 1)
        b = rngs.stream("node", 2)
        assert a is not b
        assert [a.random() for _ in range(5)] != \
               [b.random() for _ in range(5)]

    def test_reproducible_across_registries(self):
        r1 = RngRegistry(42).stream("mobility", 3)
        r2 = RngRegistry(42).stream("mobility", 3)
        assert [r1.random() for _ in range(10)] == \
               [r2.random() for _ in range(10)]

    def test_stream_isolation(self):
        """Consuming one stream never shifts another (paired-seed property
        the Figs. 17-20 comparisons rely on)."""
        reg_a = RngRegistry(7)
        untouched_a = reg_a.stream("b")
        seq_a = [untouched_a.random() for _ in range(5)]

        reg_b = RngRegistry(7)
        hungry = reg_b.stream("a")
        for _ in range(1000):
            hungry.random()
        untouched_b = reg_b.stream("b")
        seq_b = [untouched_b.random() for _ in range(5)]
        assert seq_a == seq_b

    def test_len_counts_streams(self, rngs):
        assert len(rngs) == 0
        rngs.stream("x")
        rngs.stream("y", 1)
        rngs.stream("x")
        assert len(rngs) == 2
