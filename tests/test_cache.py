"""Cache correctness tests (repro.harness.cache).

The cache key must be *complete*: any change to any ``ScenarioConfig``
field — exercised via ``with_changes`` over every field — has to produce
a different digest, otherwise a sweep could silently reuse results from
the wrong cell.  Conversely an identical rerun must hit, and a corrupted
entry must fall back to recomputation rather than crash or, worse,
deserialize garbage.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.baselines import GossipConfig
from repro.core.config import FrugalConfig
from repro.energy import EnergyConfig, PowerProfile
from repro.faults import (ChurnConfig, FaultConfig, FaultEvent, FaultPlan,
                          LinkLossConfig, RegionalOutage)
from repro.harness.cache import (ResultCache, canonical, code_version_tag,
                                 config_digest)
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, StationarySpec,
                                    run_scenario)
from repro.net import MediumConfig, RadioConfig, SizeModel
from repro.sim.shard import ShardConfig


def base_config(**changes) -> ScenarioConfig:
    cfg = ScenarioConfig(
        n_processes=6,
        mobility=RandomWaypointSpec(width=500.0, height=500.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=30.0, warmup=2.0, seed=0,
        subscriber_fraction=0.8,
        publications=(Publication(at=2.0, validity=20.0),))
    return cfg.with_changes(**changes)


#: One alternative value per ScenarioConfig field — each must flip the key.
FIELD_CHANGES = {
    "n_processes": 7,
    "mobility": StationarySpec(width=500.0, height=500.0),
    "duration": 31.0,
    "warmup": 3.0,
    "seed": 1,
    "protocol": "simple-flooding",
    "frugal": FrugalConfig(hb_upper_bound=2.0),
    "flood_period": 2.0,
    "gossip_probability": 0.5,
    "counter_threshold": 4,
    "gossip": GossipConfig(forward_probability=0.5),
    "radio": RadioConfig.paper_city_section(),
    "medium": MediumConfig(frame_loss_probability=0.1),
    "sizes": SizeModel(heartbeat_bytes=60),
    "subscriber_fraction": 0.5,
    "event_topic": ".paper.events.other-demo",
    "other_topic": ".paper.unrelated",
    "publications": (Publication(at=3.0, validity=20.0),),
    "speed_sensor": False,
    "energy": EnergyConfig(profile=PowerProfile.power_save(),
                           battery_capacity_j=25.0),
    "faults": FaultConfig(churn=ChurnConfig(mean_session_s=60.0,
                                            mean_rest_s=20.0)),
    "coalesced_timers": False,
    "shards": 2,
}

#: A fully-populated fault config plus one alternative value per
#: FaultConfig field — each must flip the cache key, otherwise a sweep
#: over churn rates / outage radii could silently reuse the wrong cell.
FAULT_BASE = FaultConfig(
    plan=FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.5,
                               duration=5.0),)),
    churn=ChurnConfig(mean_session_s=60.0, mean_rest_s=20.0),
    outages=(RegionalOutage(at=2.0, duration=10.0, center=(100.0, 100.0),
                            radius_m=50.0),),
    loss=LinkLossConfig(link_loss_min=0.1, link_loss_max=0.2))

FAULT_FIELD_CHANGES = {
    "plan": FaultPlan((FaultEvent(at=6.0, kind="crash", fraction=0.5,
                                  duration=5.0),)),
    "churn": ChurnConfig(mean_session_s=61.0, mean_rest_s=20.0),
    "outages": (RegionalOutage(at=2.0, duration=10.0,
                               center=(100.0, 100.0), radius_m=51.0),),
    "loss": LinkLossConfig(link_loss_min=0.1, link_loss_max=0.25),
}


class TestDigest:
    def test_identical_configs_share_a_digest(self):
        assert config_digest(base_config()) == config_digest(base_config())

    def test_change_table_covers_every_field(self):
        """A new ScenarioConfig field must come with a cache-key test —
        an unkeyed field would make the cache silently wrong."""
        field_names = {f.name for f in dataclasses.fields(ScenarioConfig)}
        assert field_names == set(FIELD_CHANGES), \
            "update FIELD_CHANGES when ScenarioConfig gains/loses fields"

    @pytest.mark.parametrize("field", sorted(FIELD_CHANGES))
    def test_any_field_change_misses(self, field, tmp_path):
        original = base_config()
        changed = original.with_changes(**{field: FIELD_CHANGES[field]})
        assert changed != original, f"change table no-ops on {field!r}"
        assert config_digest(changed) != config_digest(original)

    def test_version_tag_rotates_the_key(self):
        cfg = base_config()
        assert config_digest(cfg, version="a") != \
            config_digest(cfg, version="b")

    def test_code_version_tag_is_stable_in_process(self):
        assert code_version_tag() == code_version_tag()
        assert len(code_version_tag()) == 16

    def test_canonical_distinguishes_spec_classes(self):
        """Two dataclasses with identical field values but different
        types (e.g. different mobility models) must not collide."""
        a = canonical(RandomWaypointSpec(width=1.0, height=1.0,
                                         speed_min=0.0, speed_max=0.0))
        b = canonical(StationarySpec(width=1.0, height=1.0))
        assert a != b

    def test_canonical_rejects_unhashable_surprises(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_fault_change_table_covers_every_field(self):
        """A new FaultConfig field must come with a cache-key test."""
        field_names = {f.name for f in dataclasses.fields(FaultConfig)}
        assert field_names == set(FAULT_FIELD_CHANGES), \
            "update FAULT_FIELD_CHANGES when FaultConfig gains/loses " \
            "fields"

    @pytest.mark.parametrize("field", sorted(FAULT_FIELD_CHANGES))
    def test_any_fault_field_change_misses(self, field):
        original = base_config(faults=FAULT_BASE)
        changed_faults = dataclasses.replace(
            FAULT_BASE, **{field: FAULT_FIELD_CHANGES[field]})
        changed = base_config(faults=changed_faults)
        assert changed != original, f"change table no-ops on {field!r}"
        assert config_digest(changed) != config_digest(original)

    def test_fault_subfield_changes_flip_the_key(self):
        """Deep fields — a single churn rest length, one plan event's
        instant, an outage radius — must all reach the digest."""
        original = config_digest(base_config(faults=FAULT_BASE))
        deep_variants = [
            dataclasses.replace(FAULT_BASE, churn=ChurnConfig(
                mean_session_s=60.0, mean_rest_s=21.0)),
            dataclasses.replace(FAULT_BASE, plan=FaultPlan((
                FaultEvent(at=5.0, kind="silence", fraction=0.5,
                           duration=5.0),))),
            dataclasses.replace(FAULT_BASE, loss=LinkLossConfig(
                link_loss_min=0.1, link_loss_max=0.2,
                burst_rate_per_s=0.1, burst_mean_duration_s=1.0)),
        ]
        for faults in deep_variants:
            assert config_digest(base_config(faults=faults)) != original

    def test_empty_faults_differs_from_none(self):
        """faults=None and the no-op FaultConfig() produce identical
        metrics but different summaries (extra columns), so they must
        not share a cache entry."""
        assert config_digest(base_config()) != \
            config_digest(base_config(faults=FaultConfig()))

    def test_shard_config_fields_all_reach_the_digest(self):
        """Every ShardConfig knob — tile shape, epoch, latency — must
        flip the cache key: epoch/tiling are proven result-invariant,
        but ``barrier_stats`` and engine dispatch still differ, and
        ``latency_s`` changes the semantics outright."""
        variants = [
            ShardConfig(shards=4),
            ShardConfig(shards=4, rows=2),
            ShardConfig(shards=4, epoch_s=0.25),
            ShardConfig(shards=4, epoch_s=0.5),
            ShardConfig(shards=4, latency_s=2.0),
        ]
        digests = {config_digest(base_config(shards=v)) for v in variants}
        assert len(digests) == len(variants), \
            "ShardConfig fields must never share a cache entry"

    def test_int_shards_and_equivalent_config_share_a_digest(self):
        """``shards=4`` coerces to ``ShardConfig(shards=4)`` before the
        digest, so the two spellings hit the same cache entry."""
        assert config_digest(base_config(shards=4)) == \
            config_digest(base_config(shards=ShardConfig(shards=4)))


class TestCacheRoundTrip:
    def test_miss_then_hit_after_identical_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = base_config()
        assert cache.get(cfg) is None
        result = run_scenario(cfg)
        cache.put(result)
        hit = cache.get(cfg)
        assert hit is not None
        assert hit.summary() == result.summary()
        assert cache.hits == 1 and cache.misses == 1

    def test_entry_is_keyed_to_exact_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = base_config()
        cache.put(run_scenario(cfg))
        for field, value in FIELD_CHANGES.items():
            assert cache.get(cfg.with_changes(**{field: value})) is None, \
                f"stale hit after changing {field!r}"

    def test_corrupted_entry_recovers_by_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = base_config()
        cache.put(run_scenario(cfg))
        path = cache.path_for(cfg)
        path.write_bytes(b"\x80\x04 this is not a pickle")
        assert cache.get(cfg) is None          # corrupt -> miss
        assert not path.exists()               # and the entry is purged
        cache.put(run_scenario(cfg))           # recompute repopulates
        assert cache.get(cfg) is not None

    def test_truncated_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = base_config()
        cache.put(run_scenario(cfg))
        path = cache.path_for(cfg)
        path.write_bytes(path.read_bytes()[:40])   # simulate a killed write
        assert cache.get(cfg) is None
        assert not path.exists()

    def test_wrong_object_in_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = base_config()
        cache.path_for(cfg).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(cfg).write_bytes(
            pickle.dumps({"not": "a ScenarioResult"}))
        assert cache.get(cfg) is None
        assert not cache.path_for(cfg).exists()

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(run_scenario(base_config()))
        cache.put(run_scenario(base_config(seed=1)))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_sweeps_stranded_tmp_files(self, tmp_path):
        """A run killed inside put() leaves a mkstemp *.tmp behind;
        clear() must collect it or a shared cache grows forever."""
        cache = ResultCache(tmp_path)
        cache.put(run_scenario(base_config()))
        (tmp_path / "abandoned123.tmp").write_bytes(b"half a pickle")
        cache.clear()
        assert list(tmp_path.iterdir()) == []

    def test_default_dir_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache = ResultCache()
        cache.put(run_scenario(base_config()))
        assert (tmp_path / "env-cache").is_dir()
