"""Tests for multi-seed running and aggregation (repro.harness.runner)."""

from __future__ import annotations

import math

import pytest

from repro.harness.runner import (Aggregate, MultiSeedResult, aggregate,
                                  run_matrix, run_seeds)
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig)


def tiny_config(**changes) -> ScenarioConfig:
    base = ScenarioConfig(
        n_processes=6,
        mobility=RandomWaypointSpec(width=500.0, height=500.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=40.0, warmup=2.0, seed=0,
        publications=(Publication(at=2.0, validity=30.0),))
    return base.with_changes(**changes)


class TestAggregate:
    def test_mean_and_std(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.std == pytest.approx((2.0 / 3.0) ** 0.5)
        assert agg.n == 3

    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0 and agg.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_rejected_with_clear_error(self, bad):
        """One inf seed (e.g. joules_per_delivery with zero deliveries)
        must fail loudly instead of poisoning the 30-seed mean."""
        with pytest.raises(ValueError, match="non-finite"):
            aggregate([1.0, bad, 3.0])

    def test_non_finite_rejected_even_alone(self):
        with pytest.raises(ValueError, match="non-finite"):
            aggregate([float("inf")])


class _StubResult:
    """Just enough ScenarioResult surface for MultiSeedResult.summary()."""

    def __init__(self, summary):
        self._summary = summary

    def summary(self):
        return dict(self._summary)


class TestSummaryInfGuard:
    def test_by_design_inf_aggregates_to_inf_mean(self):
        """joules_per_delivery is inf for a zero-delivery seed (PR 1's
        convention); one such seed must yield an inf-mean row, not abort
        the whole sweep."""
        multi = MultiSeedResult(results=[
            _StubResult({"reliability": 0.5, "joules_per_delivery": 2.0}),
            _StubResult({"reliability": 0.0,
                         "joules_per_delivery": float("inf")}),
        ])
        summary = multi.summary()
        assert summary["reliability"].mean == 0.25     # untouched metric
        jpd = summary["joules_per_delivery"]
        assert jpd.mean == float("inf") and jpd.n == 2
        assert math.isnan(jpd.std)

    def test_nan_still_fails_loudly(self):
        multi = MultiSeedResult(results=[
            _StubResult({"reliability": float("nan")}),
            _StubResult({"reliability": 1.0}),
        ])
        with pytest.raises(ValueError, match="non-finite"):
            multi.summary()


class TestAggregateFormatting:
    """Pin __str__ exactly: reports and EXPERIMENTS.md diffs depend on it."""

    def test_small_values(self):
        assert str(aggregate([1.0, 2.0, 3.0])) == "2 ± 0.82 (n=3)"

    def test_four_significant_digits_mean_two_std(self):
        agg = Aggregate(mean=0.123456, std=0.0123, n=30)
        assert str(agg) == "0.1235 ± 0.012 (n=30)"

    def test_large_mean_switches_to_scientific(self):
        agg = Aggregate(mean=12345.678, std=0.0, n=1)
        assert str(agg) == "1.235e+04 ± 0 (n=1)"


class TestRunSeeds:
    def test_runs_once_per_seed(self):
        multi = run_seeds(tiny_config(), seeds=[1, 2, 3])
        assert len(multi.results) == 3
        assert [r.config.seed for r in multi.results] == [1, 2, 3]

    def test_summary_aggregates_all_metrics(self):
        multi = run_seeds(tiny_config(), seeds=[1, 2])
        summary = multi.summary()
        assert set(summary) == {"reliability", "bandwidth_bytes",
                                "events_sent", "duplicates", "parasites"}
        assert all(isinstance(v, Aggregate) for v in summary.values())

    def test_custom_metric(self):
        multi = run_seeds(tiny_config(), seeds=[1, 2])
        agg = multi.metric(lambda r: float(r.sim_events_processed))
        assert agg.mean > 0

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(tiny_config(), seeds=[])


class TestRunMatrix:
    def test_paired_seeds_share_mobility(self):
        """Across protocols, the same seed must produce the same
        subscriber draw — the paired-comparison property."""
        configs = {
            "frugal": tiny_config(),
            "flood": tiny_config(protocol="simple-flooding"),
        }
        outcome = run_matrix(configs, seeds=[7])
        subs_frugal = outcome["frugal"].results[0].subscriber_ids
        subs_flood = outcome["flood"].results[0].subscriber_ids
        assert subs_frugal == subs_flood

    def test_all_names_present(self):
        outcome = run_matrix({"a": tiny_config()}, seeds=[1, 2])
        assert set(outcome) == {"a"}
        assert len(outcome["a"].results) == 2
