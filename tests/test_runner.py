"""Tests for multi-seed running and aggregation (repro.harness.runner)."""

from __future__ import annotations

import pytest

from repro.harness.runner import (Aggregate, MultiSeedResult, aggregate,
                                  run_matrix, run_seeds)
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig)


def tiny_config(**changes) -> ScenarioConfig:
    base = ScenarioConfig(
        n_processes=6,
        mobility=RandomWaypointSpec(width=500.0, height=500.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=40.0, warmup=2.0, seed=0,
        publications=(Publication(at=2.0, validity=30.0),))
    return base.with_changes(**changes)


class TestAggregate:
    def test_mean_and_std(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.std == pytest.approx((2.0 / 3.0) ** 0.5)
        assert agg.n == 3

    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.mean == 5.0 and agg.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])


class TestRunSeeds:
    def test_runs_once_per_seed(self):
        multi = run_seeds(tiny_config(), seeds=[1, 2, 3])
        assert len(multi.results) == 3
        assert [r.config.seed for r in multi.results] == [1, 2, 3]

    def test_summary_aggregates_all_metrics(self):
        multi = run_seeds(tiny_config(), seeds=[1, 2])
        summary = multi.summary()
        assert set(summary) == {"reliability", "bandwidth_bytes",
                                "events_sent", "duplicates", "parasites"}
        assert all(isinstance(v, Aggregate) for v in summary.values())

    def test_custom_metric(self):
        multi = run_seeds(tiny_config(), seeds=[1, 2])
        agg = multi.metric(lambda r: float(r.sim_events_processed))
        assert agg.mean > 0

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(tiny_config(), seeds=[])


class TestRunMatrix:
    def test_paired_seeds_share_mobility(self):
        """Across protocols, the same seed must produce the same
        subscriber draw — the paired-comparison property."""
        configs = {
            "frugal": tiny_config(),
            "flood": tiny_config(protocol="simple-flooding"),
        }
        outcome = run_matrix(configs, seeds=[7])
        subs_frugal = outcome["frugal"].results[0].subscriber_ids
        subs_flood = outcome["flood"].results[0].subscriber_ids
        assert subs_frugal == subs_flood

    def test_all_names_present(self):
        outcome = run_matrix({"a": tiny_config()}, seeds=[1, 2])
        assert set(outcome) == {"a"}
        assert len(outcome["a"].results) == 2
