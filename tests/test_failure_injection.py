"""Failure injection: crashes, recoveries and lossy channels.

The paper's model (Section 2) lets processes "crash (or recover) at any
time" and runs over a collision-prone broadcast medium; these tests verify
the protocol degrades gracefully rather than wedging.
"""

from __future__ import annotations

import pytest

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.metrics import MetricsCollector
from repro.mobility import Stationary
from repro.net import MediumConfig, Node, RadioConfig, WirelessMedium
from repro.sim import RngRegistry, Simulator
from repro.sim.space import Vec2


def build_cluster(sim, rngs, n=4, spacing=50.0, medium_config=None):
    medium = WirelessMedium(sim, RadioConfig(range_override_m=300.0),
                            config=medium_config,
                            rng=rngs.stream("medium"))
    collector = MetricsCollector(medium)
    nodes = []
    for i in range(n):
        proto = FrugalPubSub(FrugalConfig())
        node = Node(i, sim, medium,
                    Stationary(position=Vec2(i * spacing, 0.0)),
                    proto, rngs.stream("node", i))
        proto.subscribe(".a")
        collector.track_node(node)
        nodes.append(node)
    for node in nodes:
        node.start()
    return medium, collector, nodes


class TestCrashRecover:
    def test_crashed_node_misses_event_then_catches_up(self, sim, rngs):
        _, _, nodes = build_cluster(sim, rngs)
        victim = nodes[3]
        sim.run(until=2.5)
        victim.crash()
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=6.0)
        assert victim.delivered_events == []
        victim.recover()
        sim.run(until=20.0)
        # Recovered with empty state, re-announces via heartbeats, gets
        # the still-valid event from any holder.
        assert victim.delivered_events == [event]

    def test_recovery_after_validity_expiry_gets_nothing(self, sim, rngs):
        _, _, nodes = build_cluster(sim, rngs)
        victim = nodes[3]
        sim.run(until=2.5)
        victim.crash()
        event = EventFactory(0).create(".a.x", validity=5.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=20.0)                 # validity long gone
        victim.recover()
        sim.run(until=40.0)
        assert victim.delivered_events == []

    def test_publisher_crash_does_not_kill_dissemination(self, sim, rngs):
        """Once the event reached one neighbour, the publisher is no
        longer needed (store-and-forward epidemic property)."""
        _, _, nodes = build_cluster(sim, rngs)
        late = nodes[3]
        sim.run(until=2.5)
        late.crash()
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=6.0)
        nodes[0].crash()                      # publisher dies
        late.recover()
        sim.run(until=25.0)
        assert late.delivered_events == [event]

    def test_mass_crash_leaves_survivors_consistent(self, sim, rngs):
        _, _, nodes = build_cluster(sim, rngs, n=6)
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=5.0)
        for node in nodes[1:4]:
            node.crash()
        sim.run(until=30.0)
        for node in (nodes[0], nodes[4], nodes[5]):
            assert event in node.delivered_events

    def test_flapping_node_survives(self, sim, rngs):
        """Crash/recover cycles must not corrupt protocol state."""
        _, _, nodes = build_cluster(sim, rngs)
        flapper = nodes[2]
        for k in range(4):
            sim.run(until=2.5 + 4.0 * k)
            flapper.crash()
            sim.run(until=4.5 + 4.0 * k)
            flapper.recover()
        event = EventFactory(0).create(".a.x", validity=120.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=40.0)
        assert event in flapper.delivered_events


class TestLossyChannel:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_dissemination_survives_random_loss(self, sim, rngs, loss):
        """Heartbeats repeat and id exchanges retrigger, so moderate
        random frame loss delays but does not prevent delivery."""
        cfg = MediumConfig(frame_loss_probability=loss)
        _, _, nodes = build_cluster(sim, rngs, medium_config=cfg)
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=600.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=120.0)
        delivered = sum(1 for n in nodes if event in n.delivered_events)
        assert delivered == len(nodes)

    def test_total_loss_blocks_everything(self, sim, rngs):
        cfg = MediumConfig(frame_loss_probability=1.0)
        _, _, nodes = build_cluster(sim, rngs, medium_config=cfg)
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=30.0)
        for node in nodes[1:]:
            assert node.delivered_events == []
            assert len(node.protocol.neighborhood) == 0
