"""Failure injection: crashes, recoveries and lossy channels.

The paper's model (Section 2) lets processes "crash (or recover) at any
time" and runs over a collision-prone broadcast medium; these tests verify
the protocol degrades gracefully rather than wedging.

All failures are driven through the fault subsystem: crash/recover
schedules are declarative :class:`FaultPlan` entries and channel loss is
the fault layer's :class:`LinkLossConfig`, both carried by the
``ScenarioConfig`` the cluster is built from — no hand-rolled injection
helpers.
"""

from __future__ import annotations

import pytest

from repro.core.events import EventFactory
from repro.faults import (FaultConfig, FaultEvent, FaultPlan,
                          LinkLossConfig)
from repro.harness.scenario import (FixedPositionsSpec, ScenarioConfig,
                                    build_world)
from repro.net import RadioConfig


def build_cluster(n=4, spacing=50.0, faults=None):
    """A started line-topology world: node ``i`` sits at ``(i*spacing, 0)``."""
    config = ScenarioConfig(
        n_processes=n,
        mobility=FixedPositionsSpec(
            positions=tuple((i * spacing, 0.0) for i in range(n))),
        duration=300.0, warmup=0.0, seed=1234,
        radio=RadioConfig(range_override_m=300.0),
        event_topic=".a",
        faults=faults)
    world = build_world(config)
    for node in world.nodes:
        node.start()
    return world


def crash_recover_plan(*events):
    """Shorthand for a ``FaultConfig`` carrying just a plan."""
    return FaultConfig(plan=FaultPlan(tuple(events)))


class TestCrashRecover:
    def test_crashed_node_misses_event_then_catches_up(self):
        world = build_cluster(faults=crash_recover_plan(
            FaultEvent(at=2.5, kind="crash", nodes=(3,)),
            FaultEvent(at=6.0, kind="recover", nodes=(3,))))
        sim, nodes = world.sim, world.nodes
        victim = nodes[3]
        sim.run(until=2.5)                  # plan has crashed the victim
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=6.0)
        assert victim.delivered_events == []
        sim.run(until=20.0)                 # recovered at 6.0 by the plan
        # Recovered with empty state, re-announces via heartbeats, gets
        # the still-valid event from any holder.
        assert victim.delivered_events == [event]

    def test_recovery_after_validity_expiry_gets_nothing(self):
        world = build_cluster(faults=crash_recover_plan(
            FaultEvent(at=2.5, kind="crash", nodes=(3,), duration=17.5)))
        sim, nodes = world.sim, world.nodes
        victim = nodes[3]
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=5.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=40.0)                 # validity long gone before 20.0
        assert victim.delivered_events == []

    def test_publisher_crash_does_not_kill_dissemination(self):
        """Once the event reached one neighbour, the publisher is no
        longer needed (store-and-forward epidemic property)."""
        world = build_cluster(faults=crash_recover_plan(
            FaultEvent(at=2.5, kind="crash", nodes=(3,)),
            FaultEvent(at=6.0, kind="crash", nodes=(0,)),   # publisher dies
            FaultEvent(at=6.0, kind="recover", nodes=(3,))))
        sim, nodes = world.sim, world.nodes
        late = nodes[3]
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=25.0)
        assert late.delivered_events == [event]

    def test_mass_crash_leaves_survivors_consistent(self):
        world = build_cluster(n=6, faults=crash_recover_plan(
            FaultEvent(at=5.0, kind="crash", nodes=(1, 2, 3))))
        sim, nodes = world.sim, world.nodes
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=300.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=30.0)
        for node in (nodes[0], nodes[4], nodes[5]):
            assert event in node.delivered_events

    def test_flapping_node_survives(self):
        """Crash/recover cycles must not corrupt protocol state."""
        world = build_cluster(faults=crash_recover_plan(
            *(FaultEvent(at=2.5 + 4.0 * k, kind="crash", nodes=(2,),
                         duration=2.0) for k in range(4))))
        sim, nodes = world.sim, world.nodes
        flapper = nodes[2]
        sim.run(until=16.5)                 # four crash/recover cycles
        event = EventFactory(0).create(".a.x", validity=120.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=40.0)
        assert event in flapper.delivered_events

    def test_timeline_records_the_injected_downtime(self):
        world = build_cluster(faults=crash_recover_plan(
            FaultEvent(at=2.0, kind="crash", nodes=(3,), duration=4.0)))
        world.sim.run(until=10.0)
        timeline = world.faults.timeline
        assert timeline.down_intervals[3] == [(2.0, 6.0)]
        assert timeline.recoveries == [(6.0, 3)]


class TestLossyChannel:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_dissemination_survives_random_loss(self, loss):
        """Heartbeats repeat and id exchanges retrigger, so moderate
        random frame loss delays but does not prevent delivery."""
        world = build_cluster(faults=FaultConfig(
            loss=LinkLossConfig(link_loss_min=loss, link_loss_max=loss)))
        sim, nodes = world.sim, world.nodes
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=600.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=120.0)
        delivered = sum(1 for n in nodes if event in n.delivered_events)
        assert delivered == len(nodes)

    def test_total_loss_blocks_everything(self):
        world = build_cluster(faults=FaultConfig(
            loss=LinkLossConfig(link_loss_min=1.0, link_loss_max=1.0)))
        sim, nodes = world.sim, world.nodes
        sim.run(until=3.3)
        event = EventFactory(0).create(".a.x", validity=60.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=30.0)
        for node in nodes[1:]:
            assert node.delivered_events == []
            assert len(node.protocol.neighborhood) == 0
        assert world.medium.frames_lost_fault > 0
