"""Unit tests for the frugal protocol (repro.core.protocol).

These tests drive a single protocol instance through a scripted
:class:`tests.helpers.FakeHost` — no medium, no mobility — and check the
paper's pseudocode behaviours phase by phase: heartbeats (Fig. 6),
event retrieval and back-off (Figs. 7-8), dissemination (Fig. 9) and
garbage collection (Fig. 10).
"""

from __future__ import annotations

import pytest

from repro.core.config import FrugalConfig
from repro.core.events import EventId
from repro.core.protocol import FrugalPubSub
from repro.core.topics import Topic
from repro.net.messages import EventBatch, EventIdList, Heartbeat

from tests.helpers import FakeHost, make_event


def deterministic_config(**changes) -> FrugalConfig:
    """Paper settings minus all randomness, for exact-time assertions."""
    base = dict(hb_jitter=0.0, backoff_jitter_frac=0.0,
                hb_upper_bound=1.0)
    base.update(changes)
    return FrugalConfig(**base)


def attach(host: FakeHost, *topics: str,
           config: FrugalConfig | None = None) -> FrugalPubSub:
    proto = FrugalPubSub(config or deterministic_config())
    proto.attach(host)
    for topic in topics:
        proto.subscribe(topic)
    proto.on_start()
    return proto


def heartbeat(sender: int, *topics: str, speed=None) -> Heartbeat:
    return Heartbeat(sender=sender,
                     subscriptions=frozenset(Topic(t) for t in topics),
                     speed=speed)


class TestLifecycle:
    def test_heartbeats_run_while_subscribed(self):
        host = FakeHost()
        proto = attach(host, ".a")
        host.advance(3.5)
        assert len(host.sent_of_kind(Heartbeat)) == 3

    def test_no_heartbeats_without_subscriptions(self):
        host = FakeHost()
        proto = FrugalPubSub(deterministic_config())
        proto.attach(host)
        proto.on_start()
        host.advance(5.0)
        assert host.sent == []

    def test_unsubscribe_to_empty_stops_heartbeats(self):
        host = FakeHost()
        proto = attach(host, ".a")
        host.advance(2.0)
        proto.unsubscribe(".a")
        before = len(host.sent_of_kind(Heartbeat))
        host.advance(5.0)
        assert len(host.sent_of_kind(Heartbeat)) == before

    def test_heartbeat_carries_subscriptions_and_speed(self):
        host = FakeHost(speed=12.5)
        attach(host, ".a", ".b.c")
        host.advance(1.5)
        hb = host.sent_of_kind(Heartbeat)[0]
        assert hb.subscriptions == {Topic(".a"), Topic(".b.c")}
        assert hb.speed == 12.5

    def test_speed_omitted_when_disabled(self):
        host = FakeHost(speed=12.5)
        attach(host, ".a",
               config=deterministic_config(speed_in_heartbeats=False))
        host.advance(1.5)
        assert host.sent_of_kind(Heartbeat)[0].speed is None

    def test_attach_twice_rejected(self):
        proto = FrugalPubSub()
        proto.attach(FakeHost())
        with pytest.raises(RuntimeError):
            proto.attach(FakeHost(host_id=2))

    def test_publish_unattached_rejected(self):
        with pytest.raises(RuntimeError):
            FrugalPubSub().publish(make_event())

    def test_crash_loses_volatile_state(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(7, ".a"))
        proto.events.store(make_event(topic=".a"), now=host.now)
        proto.on_stop()
        assert len(proto.neighborhood) == 0
        assert len(proto.events) == 0


class TestNeighborhoodDetection:
    def test_matching_heartbeat_enters_table(self):
        host = FakeHost()
        proto = attach(host, ".t0.t1")
        proto.on_message(heartbeat(5, ".t0.t1.t2", speed=3.0))
        entry = proto.neighborhood.get(5)
        assert entry is not None
        assert entry.speed == 3.0

    def test_non_matching_heartbeat_ignored(self):
        host = FakeHost()
        proto = attach(host, ".t0.t1")
        proto.on_message(heartbeat(5, ".t0.t4"))
        assert 5 not in proto.neighborhood

    def test_super_topic_neighbor_matches(self):
        """Fig. 1: T1 subscriber and T0 subscriber are neighbours."""
        host = FakeHost()
        proto = attach(host, ".t0.t1")
        proto.on_message(heartbeat(3, ".t0"))
        assert 3 in proto.neighborhood

    def test_new_neighbor_triggers_id_announcement(self):
        host = FakeHost()
        proto = attach(host, ".t0.t1")
        stored = make_event(topic=".t0.t1.x", validity=60.0, now=host.now)
        proto.events.store(stored, now=host.now)
        proto.on_message(heartbeat(5, ".t0.t1"))
        lists = host.sent_of_kind(EventIdList)
        assert len(lists) == 1
        assert lists[0].event_ids == (stored.event_id,)

    def test_known_neighbor_heartbeat_does_not_reannounce(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".a"))
        host.clear()
        proto.on_message(heartbeat(5, ".a"))
        assert host.sent_of_kind(EventIdList) == []

    def test_expired_events_not_announced(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.events.store(make_event(topic=".a", validity=5.0, now=0.0),
                           now=0.0)
        host.advance(10.0)
        host.clear()
        proto.on_message(heartbeat(5, ".a"))
        assert host.sent_of_kind(EventIdList)[0].event_ids == ()

    def test_id_list_from_stranger_ignored(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.events.store(make_event(topic=".a"), now=host.now)
        proto.on_message(EventIdList(sender=9, event_ids=(EventId(1, 1),)))
        assert not proto.backoff_pending

    def test_id_list_records_neighbor_knowledge(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".a"))
        known = EventId(2, 7)
        proto.on_message(EventIdList(sender=5, event_ids=(known,)))
        assert proto.neighborhood.get(5).knows(known)

    def test_ngc_collects_silent_neighbors(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".a"))
        # NGC delay = hb_delay * 2.5 = 2.5 s at the 1 s bound; a neighbour
        # silent for longer than that disappears.
        host.advance(6.0)
        assert 5 not in proto.neighborhood

    def test_refreshed_neighbors_survive_ngc(self):
        host = FakeHost()
        proto = attach(host, ".a")
        for _ in range(8):
            proto.on_message(heartbeat(5, ".a"))
            host.advance(1.0)
        assert 5 in proto.neighborhood


class TestAdaptiveHeartbeat:
    def test_period_follows_average_speed(self):
        host = FakeHost(speed=20.0)
        proto = attach(host, ".a",
                       config=deterministic_config(hb_upper_bound=10.0))
        proto.on_message(heartbeat(5, ".a", speed=20.0))
        # x / avg = 40 / 20 = 2 s.
        assert proto.hb_delay == 2.0

    def test_period_clamped_to_paper_upper_bound(self):
        host = FakeHost(speed=10.0)
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".a", speed=10.0))
        assert proto.hb_delay == 1.0       # 40/10 = 4 s, clamped to 1 s

    def test_static_network_converges_to_upper_bound(self):
        host = FakeHost(speed=None)
        proto = attach(host, ".a",
                       config=deterministic_config(hb_delay=15.0))
        proto.on_message(heartbeat(5, ".a"))
        assert proto.hb_delay == 1.0


class TestDissemination:
    def setup_neighbor_needing_event(self, host, proto, topic=".a.x"):
        """Make neighbour 5 known, holding nothing; store one event."""
        event = make_event(topic=topic, validity=60.0, now=host.now)
        proto.events.store(event, now=host.now)
        proto.on_message(heartbeat(5, ".a"))
        host.clear()
        # Receiving the neighbour's (empty) id list triggers retrieval.
        proto.on_message(EventIdList(sender=5, event_ids=()))
        return event

    def test_needy_neighbor_gets_event_after_backoff(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = self.setup_neighbor_needing_event(host, proto)
        assert proto.backoff_pending
        assert host.sent_of_kind(EventBatch) == []    # not yet: back-off
        host.advance(1.0)                             # BODelay = 1/(2*1)=0.5
        batches = host.sent_of_kind(EventBatch)
        assert len(batches) == 1
        assert batches[0].events == (event,)
        assert batches[0].neighbor_ids == (5,)

    def test_forward_counter_incremented_on_send(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = self.setup_neighbor_needing_event(host, proto)
        host.advance(1.0)
        assert proto.events.get(event.event_id).forward_count == 1

    def test_neighbor_marked_as_knowing_after_send(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = self.setup_neighbor_needing_event(host, proto)
        host.advance(1.0)
        assert proto.neighborhood.get(5).knows(event.event_id)
        # A second id list from the same neighbour finds nothing to send.
        host.clear()
        proto.on_message(EventIdList(sender=5, event_ids=()))
        host.advance(2.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_known_events_not_resent(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.events.store(event, now=host.now)
        proto.on_message(heartbeat(5, ".a"))
        proto.on_message(EventIdList(sender=5,
                                     event_ids=(event.event_id,)))
        host.advance(2.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_not_entitled_neighbor_not_served(self):
        """A subtopic subscriber is not entitled to super-topic events."""
        host = FakeHost()
        proto = attach(host, ".t0.t1")
        event = make_event(topic=".t0.t1", validity=60.0, now=host.now)
        proto.events.store(event, now=host.now)
        proto.on_message(heartbeat(5, ".t0.t1.t2"))   # matches, not entitled
        proto.on_message(EventIdList(sender=5, event_ids=()))
        host.advance(2.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_expired_events_not_sent(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=2.0, now=host.now)
        proto.events.store(event, now=host.now)
        host.advance(5.0)                      # expires mid-way
        proto.on_message(heartbeat(5, ".a"))
        proto.on_message(EventIdList(sender=5, event_ids=()))
        host.advance(2.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_validity_rechecked_at_backoff_expiry(self):
        """The paper recomputes events-to-send when the back-off fires."""
        host = FakeHost()
        proto = attach(host, ".a",
                       config=deterministic_config(hb2bo=0.1))
        # hb2bo=0.1 -> BODelay = 1/(0.1*1) = 10 s, longer than validity.
        event = make_event(topic=".a.x", validity=3.0, now=host.now)
        proto.events.store(event, now=host.now)
        proto.on_message(heartbeat(5, ".a"))
        proto.on_message(EventIdList(sender=5, event_ids=()))
        assert proto.backoff_pending
        host.advance(15.0)
        assert host.sent_of_kind(EventBatch) == []

    def test_backoff_shorter_with_more_events(self):
        times = {}
        for n_events in (1, 4):
            host = FakeHost()
            proto = attach(host, ".a")
            for i in range(n_events):
                proto.events.store(
                    make_event(seq=i, topic=".a.x", validity=60.0,
                               now=host.now), now=host.now)
            proto.on_message(heartbeat(5, ".a"))
            host.clear()
            proto.on_message(EventIdList(sender=5, event_ids=()))
            assert proto.backoff_pending
            times[n_events] = proto._backoff_timer.time - host.now
        assert times[4] < times[1]
        assert times[1] == pytest.approx(0.5)      # 1 / (2 * 1)
        assert times[4] == pytest.approx(0.125)    # 1 / (2 * 4)


class TestEventReception:
    def test_subscribed_event_delivered_and_stored(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(EventBatch(sender=5, events=(event,)))
        assert host.delivered == [event]
        assert event.event_id in proto.events

    def test_parasite_event_dropped(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".z", validity=60.0, now=host.now)
        proto.on_message(EventBatch(sender=5, events=(event,)))
        assert host.delivered == []
        assert event.event_id not in proto.events
        assert proto.parasites_dropped == 1

    def test_duplicate_event_dropped(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(EventBatch(sender=5, events=(event,)))
        proto.on_message(EventBatch(sender=6, events=(event,)))
        assert len(host.delivered) == 1
        assert proto.duplicates_dropped == 1

    def test_expired_event_not_delivered(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(topic=".a.x", validity=5.0, now=0.0)
        host.advance(10.0)
        proto.on_message(EventBatch(sender=5, events=(event,)))
        assert host.delivered == []

    def test_batch_updates_neighbor_knowledge(self):
        """Fig. 1 part III: p2 overhears what p1 sent to p3 and learns
        p3 now has the events."""
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(3, ".a"))
        proto.on_message(heartbeat(1, ".a"))
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(EventBatch(sender=1, events=(event,),
                                    neighbor_ids=(3, 0)))
        assert proto.neighborhood.get(1).knows(event.event_id)
        assert proto.neighborhood.get(3).knows(event.event_id)

    def test_interesting_event_cancels_backoff(self):
        host = FakeHost()
        proto = attach(host, ".a")
        held = make_event(seq=0, topic=".a.x", validity=60.0, now=host.now)
        proto.events.store(held, now=host.now)
        proto.on_message(heartbeat(5, ".a"))
        proto.on_message(EventIdList(sender=5, event_ids=()))
        assert proto.backoff_pending
        incoming = make_event(publisher=42, topic=".a.y", validity=60.0,
                              now=host.now)
        proto.on_message(EventBatch(sender=5, events=(incoming,),
                                    neighbor_ids=()))
        # Back-off restarted from scratch via retrieve (suppress + recompute).
        assert proto.backoff_pending

    def test_reception_triggers_forwarding_to_needy_neighbors(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".a"))
        proto.on_message(EventIdList(sender=5, event_ids=()))
        event = make_event(publisher=9, topic=".a.x", validity=60.0,
                           now=host.now)
        proto.on_message(EventBatch(sender=8, events=(event,),
                                    neighbor_ids=()))
        host.advance(2.0)
        batches = host.sent_of_kind(EventBatch)
        assert len(batches) == 1
        assert batches[0].events == (event,)


class TestPublish:
    def test_publish_delivers_locally_and_stores(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=host.now)
        proto.publish(event)
        assert host.delivered == [event]
        assert event.event_id in proto.events

    def test_publish_broadcasts_when_neighbor_interested(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".a"))
        host.clear()
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=host.now)
        proto.publish(event)
        batches = host.sent_of_kind(EventBatch)
        assert len(batches) == 1
        assert batches[0].neighbor_ids == (5,)
        assert proto.events.get(event.event_id).forward_count == 1

    def test_publish_stays_silent_without_interested_neighbors(self):
        host = FakeHost()
        proto = attach(host, ".a")
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=host.now)
        proto.publish(event)
        assert host.sent_of_kind(EventBatch) == []
        # ... but the event waits in the table for future encounters.
        assert event.event_id in proto.events

    def test_pure_publisher_advertises_event_topic(self):
        """A publisher with no subscriptions still beacons the topics of
        its own valid publications, so subscribers can discover it."""
        host = FakeHost()
        proto = FrugalPubSub(deterministic_config())
        proto.attach(host)
        proto.on_start()
        event = make_event(publisher=0, topic=".a.x", validity=60.0,
                           now=host.now)
        proto.publish(event)
        host.advance(1.5)
        beats = host.sent_of_kind(Heartbeat)
        assert beats and beats[0].subscriptions == {Topic(".a.x")}

    def test_pure_publisher_stops_advertising_after_expiry(self):
        host = FakeHost()
        proto = FrugalPubSub(deterministic_config())
        proto.attach(host)
        proto.on_start()
        event = make_event(publisher=0, topic=".a.x", validity=3.0,
                           now=host.now)
        proto.publish(event)
        host.advance(10.0)
        host.clear()
        host.advance(3.0)
        assert host.sent_of_kind(Heartbeat) == []

    def test_publisher_accepts_matching_heartbeats_for_its_events(self):
        host = FakeHost()
        proto = FrugalPubSub(deterministic_config())
        proto.attach(host)
        proto.on_start()
        proto.publish(make_event(publisher=0, topic=".a.x", validity=60.0,
                                 now=host.now))
        proto.on_message(heartbeat(5, ".a"))
        assert 5 in proto.neighborhood


class TestAblationSwitches:
    def test_no_backoff_sends_immediately(self):
        host = FakeHost()
        proto = attach(host, ".a",
                       config=deterministic_config(use_backoff=False))
        proto.events.store(make_event(topic=".a.x", validity=60.0,
                                      now=host.now), now=host.now)
        proto.on_message(heartbeat(5, ".a"))
        proto.on_message(EventIdList(sender=5, event_ids=()))
        assert len(host.sent_of_kind(EventBatch)) == 1   # no waiting

    def test_no_announce_retrieves_on_detection(self):
        host = FakeHost()
        proto = attach(host, ".a", config=deterministic_config(
            announce_on_new_neighbor=False))
        proto.events.store(make_event(topic=".a.x", validity=60.0,
                                      now=host.now), now=host.now)
        proto.on_message(heartbeat(5, ".a"))
        assert host.sent_of_kind(EventIdList) == []
        host.advance(2.0)
        assert len(host.sent_of_kind(EventBatch)) == 1

    def test_event_table_capacity_enforced_via_config(self):
        host = FakeHost()
        proto = attach(host, ".a", config=deterministic_config(
            event_table_capacity=2))
        for i in range(5):
            proto.on_message(EventBatch(
                sender=5,
                events=(make_event(publisher=7, seq=i, topic=".a.x",
                                   validity=60.0, now=host.now),)))
        assert len(proto.events) == 2
