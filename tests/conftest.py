"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import pytest

from repro.sim import RngRegistry, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(1234)
