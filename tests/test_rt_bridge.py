"""Tests for the loopback-bridge experiment and the rt CLI
(repro.rt.bridge, repro.rt.cli)."""

from __future__ import annotations

import math

import pytest

from repro.harness.presets import Scale
from repro.harness.scenario import FixedPositionsSpec, StationarySpec
from repro.rt.bridge import (BRIDGE_PROTOCOLS, RELIABILITY_TOLERANCE,
                             bridge_scenario, grid_positions,
                             loopback_bridge)
from repro.rt.cli import build_parser, main

TINY = Scale(
    name="tiny",
    rwp_processes=10, rwp_area_m=1200.0, rwp_warmup=10.0,
    city_processes=6, city_warmup=10.0, city_publisher_rotations=2,
    seeds=2, sweep_density="coarse",
)


class TestGrid:
    def test_positions_count_and_spacing(self):
        pts = grid_positions(20, spacing=20.0)
        assert len(pts) == 20
        assert len(set(pts)) == 20

    def test_grid_is_single_hop_for_paper_radio(self):
        # Every pair must be within the paper radio's communication
        # range, so the sim medium sees the same full mesh as the UDP
        # peer table.
        from repro.net import RadioConfig
        radio_range = RadioConfig.paper_random_waypoint()
        pts = grid_positions(40)
        diameter = max(math.dist(a, b) for a in pts for b in pts)
        assert diameter < radio_range.communication_range_m()

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_positions(0)


class TestBridgeScenario:
    def test_population_floor_and_shape(self):
        import dataclasses
        for name in ("smoke", "quick", "paper"):
            cfg = bridge_scenario("frugal",
                                  dataclasses.replace(TINY, name=name))
            assert cfg.n_processes >= 20
            assert isinstance(cfg.mobility, FixedPositionsSpec)
            assert not isinstance(cfg.mobility, StationarySpec)
            assert len(cfg.publications) == 3
            assert not cfg.speed_sensor

    def test_unknown_scale_defaults_to_20(self):
        cfg = bridge_scenario("frugal", TINY)
        assert cfg.n_processes == 20

    def test_documented_tolerances_cover_all_scales(self):
        assert set(RELIABILITY_TOLERANCE) == {"smoke", "quick", "paper"}
        assert all(0 < t <= 0.25 for t in RELIABILITY_TOLERANCE.values())


class TestBridgeRun:
    def test_frugal_bridge_within_band(self):
        # One protocol, tiny scale, high compression: the full
        # sim-vs-UDP pipeline end to end.
        result = loopback_bridge(TINY, protocols=("frugal",),
                                 time_scale=20.0)
        assert result.experiment_id == "loopback-bridge"
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["protocol"] == "frugal"
        assert row["n"] >= 20
        assert 0.0 <= row["sim_reliability"] <= 1.0
        assert 0.0 <= row["rt_reliability"] <= 1.0
        assert row["within_band"]
        assert abs(row["delta"]) <= row["tolerance"]
        assert row["rt_msgs_per_node"] > 0
        assert row["sim_msgs_per_node"] > 0

    def test_unknown_protocol_fails_fast_with_known_names(self):
        with pytest.raises(ValueError) as err:
            loopback_bridge(TINY, protocols=("frugal", "nope"))
        assert "nope" in str(err.value)
        assert "frugal" in str(err.value)

    def test_registered_in_all_experiments(self):
        from repro.harness.experiments import ALL_EXPERIMENTS
        assert "loopback-bridge" in ALL_EXPERIMENTS


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["loopback-bridge"])
        assert args.command == "loopback-bridge"
        assert args.protocols == ",".join(BRIDGE_PROTOCOLS)
        assert args.time_scale > 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_time_scale_exits_2(self, capsys):
        assert main(["loopback-bridge", "--time-scale", "0"]) == 2
        assert "time-scale" in capsys.readouterr().err

    def test_unknown_protocol_exits_2(self, capsys):
        assert main(["loopback-bridge", "--protocols", "frugal,zzz"]) == 2
        err = capsys.readouterr().err
        assert "zzz" in err and "frugal" in err
