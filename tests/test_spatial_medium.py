"""The spatially-indexed medium: exact equality with the flat scan, grid
maintenance under mobility, and transmission-history pruning.

The load-bearing guarantee is *bit-identical results*: the grid is a
pruning accelerator, never an approximation.  Every test here that
compares the two media asserts exact ``==`` on floats, not approx.
"""

from __future__ import annotations

import random

import pytest

from repro.harness.experiments import (city_scenario, energy_scenario,
                                       rwp_scenario)
from repro.harness.presets import QUICK
from repro.harness.scenario import (RandomWaypointSpec, ScenarioConfig,
                                    build_world, run_scenario)
from repro.mobility import RandomWaypoint, Stationary
from repro.net.medium import MediumConfig, WirelessMedium
from repro.net.messages import Heartbeat
from repro.net.radio import RadioConfig
from repro.sim.kernel import Simulator
from repro.sim.space import SpatialGrid, Vec2


def hb(sender: int) -> Heartbeat:
    return Heartbeat(sender=sender, subscriptions=frozenset())


def _tiny(cfg: ScenarioConfig) -> ScenarioConfig:
    """Shrink a family config so the paired runs stay test-suite fast."""
    return cfg.with_changes(warmup=min(cfg.warmup, 15.0))


#: One representative config per scenario family named in the acceptance
#: criteria: fig11 (random waypoint reliability), fig14 (city section),
#: fig17-20 (frugality comparison, a flooding protocol for contrast) and
#: the energy family (batteries deplete and unregister mid-run).
FAMILIES = {
    "fig11-rwp": _tiny(rwp_scenario(QUICK, 10.0, 10.0, validity=60.0,
                                    interest=0.8)),
    "fig14-city": _tiny(city_scenario(QUICK, validity=100.0, interest=0.6)),
    "fig17-flooding": _tiny(rwp_scenario(QUICK, 10.0, 10.0, validity=120.0,
                                         interest=0.6, n_events=3,
                                         protocol="simple-flooding",
                                         duration=80.0)),
    "energy-battery": _tiny(energy_scenario(QUICK, "neighbor-flooding",
                                            battery_j=28.0, duration=60.0)),
}


class TestGridFlatEquality:
    """Per-seed summaries must be exactly equal (== on floats)."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 3])
    def test_summaries_bit_identical(self, family, seed):
        cfg = FAMILIES[family].with_changes(seed=seed)
        grid_result = run_scenario(cfg)
        flat_result = run_scenario(cfg.with_flat_medium())
        assert grid_result.summary() == flat_result.summary()

    def test_frame_counters_bit_identical(self):
        cfg = FAMILIES["fig11-rwp"].with_changes(seed=7)
        grid_world = build_world(cfg)
        flat_world = build_world(cfg.with_flat_medium())
        for world in (grid_world, flat_world):
            for node in world.nodes:
                node.start()
            world.sim.run(until=20.0)
        for attr in ("frames_sent", "frames_delivered", "frames_collided",
                     "frames_lost_random"):
            assert getattr(grid_world.medium, attr) == \
                getattr(flat_world.medium, attr), attr

    def test_stationary_with_frame_loss_identical(self):
        cfg = ScenarioConfig.random_waypoint_demo(seed=5).with_changes(
            mobility=RandomWaypointSpec(width=1500.0, height=1500.0,
                                        speed_min=0.0, speed_max=0.0),
            medium=MediumConfig(frame_loss_probability=0.2),
            duration=60.0)
        assert run_scenario(cfg).summary() == \
            run_scenario(cfg.with_flat_medium()).summary()


class TestGridWiring:
    def test_grid_mode_wires_mobility_pushes(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                rng=rngs.stream("medium"))
        assert medium.position_slack_m == pytest.approx(100.0 / 8.0)
        from repro.core import FrugalConfig, FrugalPubSub
        from repro.net import Node
        node = Node(0, sim, medium, Stationary(position=Vec2(3, 4)),
                    FrugalPubSub(FrugalConfig(hb_jitter=0.0)),
                    rngs.stream("node", 0))
        assert node.mobility.on_move is not None
        assert node.mobility.anchor_interval_m == medium.position_slack_m
        node.start()
        assert medium._grid.position(0) == Vec2(3, 4)

    def test_flat_mode_wires_nothing(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                config=MediumConfig(spatial_index=False),
                                rng=rngs.stream("medium"))
        assert medium.position_slack_m is None
        from repro.core import FrugalConfig, FrugalPubSub
        from repro.net import Node
        node = Node(0, sim, medium, Stationary(position=Vec2(0, 0)),
                    FrugalPubSub(FrugalConfig(hb_jitter=0.0)),
                    rngs.stream("node", 0))
        assert node.mobility.on_move is None
        assert node.mobility.anchor_interval_m is None

    def test_prestarted_mobility_is_resynced_on_wiring(self, sim, rngs):
        """Regression: a mobility model started *before* the node wires
        ``on_move`` is mid-leg with no re-anchor timer; the wiring must
        resync it or its grid anchor drifts unboundedly."""
        from repro.core import FrugalConfig, FrugalPubSub
        from repro.net import Node
        model = RandomWaypoint(5000.0, 5000.0, speed_min=10.0,
                               speed_max=10.0, pause_time=1.0)
        model.start(sim, rngs.stream("walker"))
        sim.run(until=5.0)            # well into the first leg
        medium = WirelessMedium(sim, RadioConfig.paper_random_waypoint(),
                                rng=rngs.stream("medium"))
        node = Node(0, sim, medium, model,
                    FrugalPubSub(FrugalConfig(hb_jitter=0.0)),
                    rngs.stream("node", 0))
        node.start()
        slack = medium.position_slack_m
        for step in range(1, 160):    # long enough to cross the leg
            sim.run(until=5.0 + step * 0.5)
            drift = medium._grid.position(0).distance_to(node.position())
            assert drift <= slack + 1e-9

    def test_anchor_never_lags_by_more_than_slack(self):
        """Mid-leg re-anchors bound the true-position drift."""
        sim = Simulator()
        model = RandomWaypoint(2000.0, 2000.0, speed_min=10.0,
                               speed_max=10.0, pause_time=1.0)
        anchors = []
        model.anchor_interval_m = 25.0
        model.on_move = anchors.append
        model.start(sim, random.Random(1))
        checked = 0
        for step in range(1, 400):
            sim.run(until=step * 0.25)
            drift = anchors[-1].distance_to(model.position())
            assert drift <= 25.0 + 1e-9
            checked += 1
        assert checked and len(anchors) > 10


class TestGridMaintenanceUnderMobility:
    def _membership_count(self, grid: SpatialGrid, obj_id: int) -> int:
        return sum(1 for bucket in grid._cells.values() if obj_id in bucket)

    def test_cell_crossing_keeps_exactly_one_entry(self):
        """A node walking across many cell boundaries occupies exactly
        one bucket at every instant (insert moves, never duplicates)."""
        grid = SpatialGrid(cell_size=10.0)
        for i in range(200):   # diagonal walk across ~30 cells
            grid.insert(42, Vec2(i * 1.5, i * 1.5))
            assert self._membership_count(grid, 42) == 1
            assert len(grid) == 1

    def test_remove_then_reinsert_is_clean(self):
        grid = SpatialGrid(cell_size=10.0)
        grid.insert(7, Vec2(5, 5))
        grid.remove(7)
        assert self._membership_count(grid, 7) == 0
        grid.insert(7, Vec2(95, 95))
        assert self._membership_count(grid, 7) == 1
        assert grid.query_radius(Vec2(95, 95), 1.0) == [7]

    def test_world_grid_has_one_entry_per_live_node(self):
        """After real mobility churned for a while, every registered node
        has exactly one grid membership and the grid holds nothing else."""
        cfg = FAMILIES["fig11-rwp"].with_changes(seed=2)
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        world.sim.run(until=30.0)
        grid = world.medium._grid
        assert sorted(grid.ids()) == sorted(world.medium.nodes)
        for nid in world.medium.nodes:
            assert self._membership_count(grid, nid) == 1
        # Anchors are honest: nobody drifted beyond the slack distance.
        slack = world.medium.position_slack_m
        for nid, node in world.medium.nodes.items():
            assert grid.position(nid).distance_to(node.position()) \
                <= slack + 1e-9

    def test_power_down_stops_anchor_pushes_and_repower_resumes(
            self, sim, rngs):
        """A drained device must not keep arming re-anchor timers (its
        pushes would all be discarded); repowering re-wires and re-indexes."""
        from repro.core import FrugalConfig, FrugalPubSub
        from repro.net import Node
        medium = WirelessMedium(sim, RadioConfig.paper_random_waypoint(),
                                rng=rngs.stream("medium"))
        model = RandomWaypoint(5000.0, 5000.0, speed_min=10.0,
                               speed_max=10.0, pause_time=1.0)
        node = Node(0, sim, medium, model,
                    FrugalPubSub(FrugalConfig(hb_jitter=0.0)),
                    rngs.stream("node", 0))
        node.start()
        sim.run(until=3.0)
        node.power_down()
        assert model.on_move is None
        assert model._anchor_timer is None or not model._anchor_timer.active
        assert 0 not in medium._grid
        sim.run(until=10.0)
        node.repower()
        assert model.on_move is not None
        assert medium._grid.position(0) == node.position()
        slack = medium.position_slack_m
        for step in range(1, 40):     # anchor stays bounded again
            sim.run(until=10.0 + step * 0.5)
            drift = medium._grid.position(0).distance_to(node.position())
            assert drift <= slack + 1e-9

    def test_drained_node_leaves_the_grid(self):
        """Battery death unregisters the node from medium *and* grid,
        even though its mobility model keeps pushing anchors."""
        cfg = energy_scenario(QUICK, "neighbor-flooding",
                              battery_j=2.0, duration=60.0)
        cfg = cfg.with_changes(warmup=5.0, seed=1)
        result = run_scenario(cfg)
        depleted = set(result.energy.depleted_ids())
        assert depleted, "scenario must actually drain some batteries"
        # Re-run the world manually to inspect the live medium state.
        world = build_world(cfg)
        for node in world.nodes:
            node.start()
        world.sim.run(until=cfg.warmup + cfg.duration)
        world.energy.finalize()
        dead = set(world.energy.depleted_ids())
        assert dead
        grid = world.medium._grid
        for nid in dead:
            assert nid not in world.medium.nodes
            assert nid not in grid
        for nid in world.medium.nodes:
            assert nid in grid


class TestHistoryPruning:
    def _flat_medium(self, sim, **cfg):
        return WirelessMedium(
            sim, RadioConfig(range_override_m=100.0),
            config=MediumConfig(spatial_index=False, **cfg),
            rng=random.Random(0))

    class _Stub:
        def __init__(self, node_id, pos):
            self.id = node_id
            self.pos = pos
            self.alive = True
            self.asleep = False
            self.silenced = False

        @property
        def listening(self):
            return self.alive and not self.asleep and not self.silenced

        def position(self):
            return self.pos

        def receive(self, message):
            pass

    def test_quiet_run_does_not_pin_history_forever(self, sim):
        """Regression: pruning used to trigger only above 256 entries, so
        a long quiet run kept every old transmission alive.  The horizon
        now applies regardless of length."""
        medium = self._flat_medium(sim)
        medium.register(self._Stub(0, Vec2(0, 0)))
        medium.register(self._Stub(1, Vec2(10, 0)))
        for i in range(20):
            medium.broadcast(0, hb(0))
            sim.run(until=sim.now + 0.01)
        sim.run(until=600.0)          # long quiet stretch
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert len(medium._history) == 1   # just the fresh frame

    def test_history_keeps_frames_inside_horizon(self, sim):
        medium = self._flat_medium(sim)
        medium.register(self._Stub(0, Vec2(0, 0)))
        medium.register(self._Stub(1, Vec2(10, 0)))
        medium.broadcast(0, hb(0))
        sim.run(until=0.5)            # inside the 1 s horizon
        medium.broadcast(0, hb(0))
        assert len(medium._history) == 2

    def test_transmission_index_prunes_on_horizon(self, sim):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                config=MediumConfig(vectorized=False),
                                rng=random.Random(0))
        medium.register(self._Stub(0, Vec2(0, 0)))
        medium.register(self._Stub(1, Vec2(10, 0)))
        for _ in range(5):
            medium.broadcast(0, hb(0))
            sim.run(until=sim.now + 0.01)
        sim.run(until=120.0)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert len(medium._tx_index) == 1

    def test_txlog_prunes_on_horizon(self, sim):
        """The vectorized transmission log honours the same horizon."""
        medium = WirelessMedium(sim, RadioConfig(range_override_m=100.0),
                                rng=random.Random(0))
        if medium._txlog is None:   # numpy-less fallback: nothing to pin
            return
        medium.register(self._Stub(0, Vec2(0, 0)))
        medium.register(self._Stub(1, Vec2(10, 0)))
        for _ in range(5):
            medium.broadcast(0, hb(0))
            sim.run(until=sim.now + 0.01)
        assert len(medium._txlog) == 5
        sim.run(until=120.0)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert len(medium._txlog) == 1
