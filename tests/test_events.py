"""Unit tests for events (repro.core.events)."""

from __future__ import annotations

import pytest

from repro.core.events import Event, EventFactory, EventId, StoredEvent
from repro.core.topics import Topic


class TestEventId:
    def test_equality_and_ordering(self):
        assert EventId(1, 2) == EventId(1, 2)
        assert EventId(1, 2) < EventId(1, 3) < EventId(2, 0)

    def test_str(self):
        assert str(EventId(7, 42)) == "7:42"

    def test_hashable(self):
        assert len({EventId(1, 1), EventId(1, 1), EventId(1, 2)}) == 2


class TestEvent:
    def test_expiry_window(self):
        e = Event(EventId(1, 0), Topic(".t"), validity=60.0,
                  published_at=100.0)
        assert e.expires_at == 160.0
        assert e.is_valid(100.0)
        assert e.is_valid(159.9)
        assert not e.is_valid(160.0)

    def test_remaining_validity_clamps_at_zero(self):
        e = Event(EventId(1, 0), Topic(".t"), validity=10.0,
                  published_at=0.0)
        assert e.remaining_validity(4.0) == 6.0
        assert e.remaining_validity(100.0) == 0.0

    def test_invalid_validity_rejected(self):
        with pytest.raises(ValueError):
            Event(EventId(1, 0), Topic(".t"), validity=0.0,
                  published_at=0.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Event(EventId(1, 0), Topic(".t"), validity=1.0,
                  published_at=0.0, payload_bytes=-1)

    def test_default_payload_is_paper_400_bytes(self):
        e = Event(EventId(1, 0), Topic(".t"), validity=1.0,
                  published_at=0.0)
        assert e.payload_bytes == 400

    def test_immutability(self):
        e = Event(EventId(1, 0), Topic(".t"), validity=1.0,
                  published_at=0.0)
        with pytest.raises(Exception):
            e.validity = 99.0


class TestStoredEvent:
    def test_wraps_event_fields(self):
        e = Event(EventId(3, 1), Topic(".a.b"), validity=5.0,
                  published_at=2.0)
        row = StoredEvent(event=e, stored_at=2.5)
        assert row.event_id == EventId(3, 1)
        assert row.topic == Topic(".a.b")
        assert row.forward_count == 0
        assert row.is_valid(3.0)
        assert not row.is_valid(7.0)


class TestEventFactory:
    def test_sequence_numbers_increase(self):
        f = EventFactory(9)
        a = f.create(".t", validity=1.0, now=0.0)
        b = f.create(".t", validity=1.0, now=0.0)
        assert a.event_id == EventId(9, 0)
        assert b.event_id == EventId(9, 1)

    def test_accepts_topic_or_string(self):
        f = EventFactory(1)
        assert f.create(Topic(".x"), validity=1.0, now=0.0).topic == \
            Topic(".x")

    def test_payload_passthrough(self):
        f = EventFactory(1)
        e = f.create(".x", validity=1.0, now=0.0,
                     payload={"spot": 17}, payload_bytes=123)
        assert e.payload == {"spot": 17}
        assert e.payload_bytes == 123

    def test_distinct_factories_can_collide_only_across_publishers(self):
        a = EventFactory(1).create(".t", validity=1.0, now=0.0)
        b = EventFactory(2).create(".t", validity=1.0, now=0.0)
        assert a.event_id != b.event_id
