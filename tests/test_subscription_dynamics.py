"""Subscription dynamics: the paper allows a process to change its
subscription list at any time (Section 4.1, footnote 3).  These tests
verify the protocol tracks such changes live — heartbeats, matching,
entitlement and task lifecycle all follow the current subscription set."""

from __future__ import annotations

from repro.core import FrugalConfig, FrugalPubSub
from repro.core.events import EventFactory
from repro.core.topics import Topic
from repro.mobility import Stationary
from repro.net import Node, RadioConfig, WirelessMedium
from repro.net.messages import EventBatch, EventIdList, Heartbeat
from repro.sim.space import Vec2

from tests.helpers import FakeHost, make_event
from tests.test_protocol_unit import attach, deterministic_config, heartbeat


class TestUnitLevel:
    def test_heartbeats_carry_current_subscriptions(self):
        host = FakeHost()
        proto = attach(host, ".a")
        host.advance(1.5)
        assert host.sent_of_kind(Heartbeat)[-1].subscriptions == \
            {Topic(".a")}
        proto.subscribe(".b")
        proto.unsubscribe(".a")
        host.advance(1.0)
        assert host.sent_of_kind(Heartbeat)[-1].subscriptions == \
            {Topic(".b")}

    def test_new_subscription_enables_matching(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.on_message(heartbeat(5, ".z"))
        assert 5 not in proto.neighborhood
        proto.subscribe(".z")
        proto.on_message(heartbeat(5, ".z"))
        assert 5 in proto.neighborhood

    def test_unsubscribe_stops_delivery_of_that_topic(self):
        host = FakeHost()
        proto = attach(host, ".a", ".b")
        proto.unsubscribe(".a")
        event = make_event(topic=".a.x", validity=60.0, now=host.now)
        proto.on_message(EventBatch(sender=5, events=(event,)))
        assert host.delivered == []
        assert proto.parasites_dropped == 1

    def test_resubscribe_restarts_tasks(self):
        host = FakeHost()
        proto = attach(host, ".a")
        proto.unsubscribe(".a")
        host.advance(3.0)
        host.clear()
        proto.subscribe(".a")
        host.advance(1.5)
        assert host.sent_of_kind(Heartbeat)

    def test_events_kept_but_serving_stops_after_unsubscribe(self):
        """Unsubscribing does not purge the event table — but the process
        no longer *matches* neighbours of that topic (its heartbeats stop
        advertising it), so it also stops serving them: the frugal
        protocol only burdens processes with topics they currently care
        about (Section 3, phase 1)."""
        host = FakeHost()
        proto = attach(host, ".a", ".keep")
        event = make_event(topic=".a.x", validity=120.0, now=host.now)
        proto.on_message(EventBatch(sender=9, events=(event,)))
        proto.unsubscribe(".a")
        assert event.event_id in proto.events      # storage survives
        proto.on_message(heartbeat(5, ".a"))       # ... but no match,
        assert 5 not in proto.neighborhood
        proto.on_message(EventIdList(sender=5, event_ids=()))
        host.advance(2.0)
        assert host.sent_of_kind(EventBatch) == []  # ... so no serving


class TestEndToEnd:
    def test_late_subscriber_catches_up(self, sim, rngs):
        """A process that subscribes after publication still receives the
        event while it is valid — time decoupling via validity periods."""
        medium = WirelessMedium(sim, RadioConfig(range_override_m=150.0),
                                rng=rngs.stream("medium"))
        nodes = []
        for i in range(3):
            proto = FrugalPubSub(FrugalConfig())
            node = Node(i, sim, medium,
                        Stationary(position=Vec2(i * 60.0, 0.0)), proto,
                        rngs.stream("node", i))
            nodes.append(node)
        nodes[0].protocol.subscribe(".news")
        nodes[1].protocol.subscribe(".news")
        nodes[2].protocol.subscribe(".other")       # not yet interested
        for n in nodes:
            n.start()
        sim.run(until=2.5)
        event = EventFactory(0).create(".news.flash", validity=120.0,
                                       now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=10.0)
        assert event not in nodes[2].delivered_events
        nodes[2].protocol.subscribe(".news")        # change of interest
        sim.run(until=30.0)
        assert event in nodes[2].delivered_events

    def test_unsubscribed_node_becomes_parasite_free(self, sim, rngs):
        medium = WirelessMedium(sim, RadioConfig(range_override_m=150.0),
                                rng=rngs.stream("medium"))
        from repro.metrics import MetricsCollector
        collector = MetricsCollector(medium)
        nodes = []
        for i in range(3):
            proto = FrugalPubSub(FrugalConfig())
            node = Node(i, sim, medium,
                        Stationary(position=Vec2(i * 60.0, 0.0)), proto,
                        rngs.stream("node", i))
            proto.subscribe(".news")
            collector.track_node(node)
            nodes.append(node)
        for n in nodes:
            n.start()
        sim.run(until=2.5)
        nodes[2].protocol.unsubscribe(".news")
        nodes[2].protocol.subscribe(".quiet")
        event = EventFactory(0).create(".news.flash", validity=60.0,
                                       now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=20.0)
        assert event not in nodes[2].delivered_events


class TestBluetoothPreset:
    def test_preset_values(self):
        cfg = RadioConfig.bluetooth()
        assert cfg.communication_range_m() == 10.0
        assert cfg.tx_power_dbm == 4.0

    def test_protocol_runs_on_bluetooth(self, sim, rngs):
        """Portability: the identical protocol binary works on the tiny
        Bluetooth radius — only the physics change."""
        medium = WirelessMedium(sim, RadioConfig.bluetooth(),
                                rng=rngs.stream("medium"))
        nodes = []
        for i in range(2):
            proto = FrugalPubSub(FrugalConfig())
            node = Node(i, sim, medium,
                        Stationary(position=Vec2(i * 8.0, 0.0)), proto,
                        rngs.stream("node", i))
            proto.subscribe(".a")
            nodes.append(node)
        for n in nodes:
            n.start()
        sim.run(until=2.5)
        event = EventFactory(0).create(".a.x", validity=30.0, now=sim.now)
        nodes[0].protocol.publish(event)
        sim.run(until=6.0)
        assert event in nodes[1].delivered_events
