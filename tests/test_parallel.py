"""Determinism suite for the parallel execution engine.

The engine's contract is strict: fanning a sweep across worker processes
must change *nothing* — per-seed summaries from ``jobs=4`` are required
to be exactly equal (``==`` on floats, not approximately) to the serial
results, in the caller's seed order, for every scenario family including
energy-instrumented ones.  The cache side of the contract: a rerun of an
already-cached sweep performs zero scenario executions.

One spawn pool is shared module-wide (session fixture) because spawning
interpreters costs seconds; every test that needs parallelism reuses it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.energy import DutyCycleConfig, EnergyConfig, PowerProfile
from repro.faults import (ChurnConfig, FaultConfig, FaultEvent, FaultPlan,
                          LinkLossConfig, RegionalOutage)
from repro.harness import parallel
from repro.harness.cache import ResultCache
from repro.harness.experiments import frugality_comparison
from repro.harness.parallel import EngineStats, ParallelRunner
from repro.harness.presets import Scale
from repro.harness.scenario import (CitySectionSpec, Publication,
                                    RandomWaypointSpec, ScenarioConfig,
                                    StationarySpec)
from repro.net import RadioConfig

SEEDS = [0, 1, 2, 3, 4]


def _rwp_frugal() -> ScenarioConfig:
    return ScenarioConfig(
        n_processes=8,
        mobility=RandomWaypointSpec(width=900.0, height=900.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=40.0, warmup=4.0,
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=30.0),))


def _stationary_gossip() -> ScenarioConfig:
    return ScenarioConfig(
        n_processes=8,
        mobility=StationarySpec(width=700.0, height=700.0),
        duration=30.0, warmup=2.0,
        protocol="gossip-flooding", gossip_probability=0.7,
        subscriber_fraction=0.5,
        publications=(Publication(at=1.0, validity=20.0),
                      Publication(at=5.0, validity=20.0, publisher=1)))


def _city_frugal() -> ScenarioConfig:
    return ScenarioConfig(
        n_processes=6,
        mobility=CitySectionSpec(),
        duration=30.0, warmup=5.0,
        radio=RadioConfig.paper_city_section(),
        publications=(Publication(at=2.0, validity=25.0),))


def _rwp_energy() -> ScenarioConfig:
    return _rwp_frugal().with_changes(energy=EnergyConfig(
        profile=PowerProfile.power_save(),
        battery_capacity_j=30.0,
        duty_cycle=DutyCycleConfig.heartbeat_aligned(1.0, 0.5)))


def _rwp_faults() -> ScenarioConfig:
    """All four fault mechanisms at once: plan + churn + outage + loss."""
    return _rwp_frugal().with_changes(faults=FaultConfig(
        plan=FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.25,
                                   duration=10.0),)),
        churn=ChurnConfig(mean_session_s=15.0, mean_rest_s=5.0,
                          fraction=0.5),
        outages=(RegionalOutage(at=8.0, duration=6.0,
                                center=(450.0, 450.0), radius_m=250.0),),
        loss=LinkLossConfig(link_loss_min=0.05, link_loss_max=0.15,
                            burst_rate_per_s=0.05,
                            burst_mean_duration_s=2.0,
                            burst_loss_probability=0.8)))


#: The determinism matrix: one config per scenario family, including an
#: energy-instrumented one (whose summary carries the PR-1 energy fields)
#: and a fully fault-instrumented one (plan + churn + outage + loss, the
#: PR-4 availability fields).
MATRIX = {
    "rwp-frugal": _rwp_frugal,
    "stationary-gossip": _stationary_gossip,
    "city-frugal": _city_frugal,
    "rwp-energy-dutycycle": _rwp_energy,
    "rwp-churn-faults": _rwp_faults,
}


@pytest.fixture(scope="module")
def pool():
    """One spawn pool for the whole module (workers cost seconds)."""
    with ParallelRunner(jobs=4) as runner:
        yield runner


class TestSerialParallelEquality:
    @pytest.mark.parametrize("name", sorted(MATRIX))
    def test_summaries_bit_identical(self, name, pool):
        config = MATRIX[name]()
        serial = ParallelRunner(jobs=1).run_seeds(config, SEEDS)
        fanned = pool.run_seeds(config, SEEDS)
        for ours, theirs in zip(serial.results, fanned.results):
            # Exact float equality — the whole point of the engine.
            assert ours.summary() == theirs.summary()
            assert ours.sim_events_processed == theirs.sim_events_processed
            assert ours.subscriber_ids == theirs.subscriber_ids
            assert ours.per_event_reports() == theirs.per_event_reports()

    def test_energy_summary_fields_survive_the_pool(self, pool):
        multi = pool.run_seeds(_rwp_energy(), SEEDS[:2])
        for result in multi.results:
            summary = result.summary()
            for key in ("joules_per_node", "joules_per_delivery",
                        "lifetime_s", "survivor_fraction",
                        "survivor_reliability"):
                assert key in summary

    def test_fault_summary_fields_survive_the_pool(self, pool):
        multi = pool.run_seeds(_rwp_faults(), SEEDS[:2])
        for result in multi.results:
            summary = result.summary()
            for key in ("availability", "churn_reliability",
                        "recovery_latency_s", "downtime_s"):
                assert key in summary
            assert summary["availability"] < 1.0
            # The full timeline crosses the process boundary intact.
            assert result.faults is not None
            assert result.faults.down_intervals

    def test_aggregates_equal_too(self, pool):
        config = _rwp_frugal()
        serial = ParallelRunner(jobs=1).run_seeds(config, SEEDS)
        fanned = pool.run_seeds(config, SEEDS)
        assert serial.summary() == fanned.summary()


class TestOrdering:
    def test_results_follow_caller_seed_order(self, pool):
        seeds = [3, 0, 4, 1, 2]          # deliberately not sorted
        multi = pool.run_seeds(_rwp_frugal(), seeds)
        assert [r.config.seed for r in multi.results] == seeds

    def test_matrix_keeps_names_and_seed_order(self, pool):
        configs = {
            "frugal": _rwp_frugal(),
            "gossip": _rwp_frugal().with_changes(protocol="gossip-flooding"),
        }
        outcome = pool.run_matrix(configs, seeds=[2, 0, 1])
        assert list(outcome) == ["frugal", "gossip"]
        for multi in outcome.values():
            assert [r.config.seed for r in multi.results] == [2, 0, 1]

    def test_matrix_pairs_seeds_across_protocols(self, pool):
        """The paired-comparison property must survive the pool: the same
        seed gives the same subscriber draw for every protocol."""
        configs = {
            "frugal": _stationary_gossip().with_changes(protocol="frugal"),
            "gossip": _stationary_gossip(),
        }
        outcome = pool.run_matrix(configs, seeds=[7, 8])
        for a, b in zip(outcome["frugal"].results,
                        outcome["gossip"].results):
            assert a.config.seed == b.config.seed
            assert a.subscriber_ids == b.subscriber_ids


class TestPickleRoundTrip:
    def test_result_detaches_and_keeps_every_metric(self):
        original = ParallelRunner(jobs=1).run_seeds(_rwp_energy(), [0])
        result = original.results[0]
        clone = pickle.loads(pickle.dumps(result))
        assert clone.summary() == result.summary()
        assert clone.per_event_reports() == result.per_event_reports()
        assert clone.survivor_ids() == result.survivor_ids()
        assert clone.total_joules() == result.total_joules()
        assert clone.config == result.config
        # Detached: the multi-megabyte world graph must not tag along.
        assert len(pickle.dumps(clone)) < 100_000

    def test_config_round_trips(self):
        for factory in MATRIX.values():
            config = factory()
            assert pickle.loads(pickle.dumps(config)) == config


#: A miniature scale for the bench-sweep cache test below.
NANO = Scale(
    name="nano",
    rwp_processes=8, rwp_area_m=1000.0, rwp_warmup=5.0,
    city_processes=5, city_warmup=5.0, city_publisher_rotations=1,
    seeds=2, sweep_density="coarse",
)


class TestCachedSweep:
    def test_cached_rerun_executes_zero_scenarios(self, tmp_path):
        """Acceptance criterion: rerunning a bench_fig sweep with a warm
        cache performs no scenario executions at all."""
        cache = ResultCache(tmp_path / "cache")
        runner = parallel.configure(jobs=1, cache=cache)
        try:
            first = frugality_comparison(NANO, protocols=("frugal",),
                                         experiment_id="fig17-20")
            cells = runner.stats.executed
            assert cells > 0
            assert runner.stats.cache_hits == 0

            runner.stats.reset()
            second = frugality_comparison(NANO, protocols=("frugal",),
                                          experiment_id="fig17-20")
            assert runner.stats.executed == 0, \
                "warm rerun must answer every cell from the cache"
            assert runner.stats.cache_hits == cells
            assert second.rows == first.rows
        finally:
            parallel.configure(jobs=1, cache=None)

    def test_partial_cache_computes_only_missing_cells(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = _rwp_frugal()
        warm = ParallelRunner(jobs=1, cache=cache)
        warm.run_seeds(config, [0, 1])
        extended = ParallelRunner(jobs=1, cache=cache)
        multi = extended.run_seeds(config, [0, 1, 2, 3])
        assert extended.stats.cache_hits == 2
        assert extended.stats.executed == 2
        assert [r.config.seed for r in multi.results] == [0, 1, 2, 3]


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1).run_seeds(_rwp_frugal(), [])
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1).run_matrix({"a": _rwp_frugal()}, [])

    def test_engine_stats_totals(self):
        stats = EngineStats(executed=3, cache_hits=4)
        assert stats.total == 7
        stats.reset()
        assert stats.total == 0

    def test_runner_module_still_delegates(self):
        """The historical entry point (repro.harness.runner.run_seeds)
        must route through the engine — experiments depend on it."""
        from repro.harness.runner import run_seeds as legacy_run_seeds
        runner = parallel.get_default_runner()
        runner.stats.reset()
        multi = legacy_run_seeds(_stationary_gossip(), [0, 1])
        assert len(multi.results) == 2
        assert runner.stats.executed == 2
