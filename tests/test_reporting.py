"""Tests for result rendering (repro.harness.reporting)."""

from __future__ import annotations

import csv

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.reporting import (format_experiment, format_table,
                                     pivot_table, reliability_grid, to_csv)


def sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="figX", title="Sample", parameters={"scale": "quick"})
    result.rows = [
        {"speed": 5.0, "validity": 30.0, "reliability": 0.61,
         "reliability_std": 0.05},
        {"speed": 5.0, "validity": 90.0, "reliability": 0.92,
         "reliability_std": 0.02},
        {"speed": 10.0, "validity": 30.0, "reliability": 0.74,
         "reliability_std": 0.04},
        {"speed": 10.0, "validity": 90.0, "reliability": 0.97,
         "reliability_std": 0.01},
    ]
    return result


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert len(lines) == 4          # header, separator, 2 rows

    def test_alignment_consistent(self):
        text = format_table([{"col": 1}, {"col": 1000}])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_bools_and_floats_rendered(self):
        text = format_table([{"flag": True, "v": 0.123456}])
        assert "yes" in text
        assert "0.1235" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_explicit_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestFormatExperiment:
    def test_includes_title_and_hides_std_columns(self):
        text = format_experiment(sample_result())
        assert "figX" in text and "Sample" in text
        assert "reliability_std" not in text

    def test_explicit_columns_respected(self):
        text = format_experiment(sample_result(), columns=["speed"])
        assert "reliability" not in text.splitlines()[2]


class TestToCsv:
    def test_round_trips_all_columns(self, tmp_path):
        path = tmp_path / "out.csv"
        to_csv(sample_result(), str(path))
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 4
        assert "reliability_std" in rows[0]
        assert float(rows[0]["reliability"]) == 0.61

    def test_empty_result_rejected(self, tmp_path):
        empty = ExperimentResult("x", "t", {})
        with pytest.raises(ValueError):
            to_csv(empty, str(tmp_path / "no.csv"))


class TestReliabilityGrid:
    def test_pivots_rows_to_matrix(self):
        text = reliability_grid(sample_result(), row_key="speed",
                                col_key="validity")
        lines = text.splitlines()
        assert "validity=30" in lines[0]
        assert "validity=90" in lines[0]
        assert len(lines) == 4          # header, sep, 2 speed rows

    def test_fixed_filter(self):
        text = reliability_grid(sample_result(), row_key="speed",
                                col_key="validity", speed=5.0)
        assert len(text.splitlines()) == 3


class TestPivotTable:
    """The multi-key pivot every grid rendering now routes through."""

    def test_single_key_byte_identical_to_historical_grid(self):
        # Golden output of the pre-generalisation reliability_grid
        # implementation: the single-key path must never drift.
        expected = ("speed | validity=30 | validity=90\n"
                    "------+-------------+------------\n"
                    "    5 |        0.61 |        0.92\n"
                    "   10 |        0.74 |        0.97")
        rows = [r for r in sample_result().rows]
        assert pivot_table(rows, "speed", "validity",
                           "reliability") == expected
        assert reliability_grid(sample_result(), row_key="speed",
                                col_key="validity") == expected

    def test_multi_key_rows_and_cols(self):
        rows = [{"p": p, "duty": d, "churn": c, "rel": 0.5}
                for p in ("a", "b") for d in (1.0, 0.5) for c in (0.0, 2.0)]
        text = pivot_table(rows, ("p", "duty"), ("churn",), "rel")
        lines = text.splitlines()
        # One label column per row key, one line per (p, duty) combo.
        assert lines[0].startswith("p | duty")
        assert len(lines) == 2 + 4
        assert "churn=0" in lines[0] and "churn=2" in lines[0]

    def test_multi_key_col_labels_join_keys(self):
        rows = [{"p": "a", "duty": d, "churn": c, "rel": 0.5}
                for d in (1.0, 0.5) for c in (0.0, 2.0)]
        text = pivot_table(rows, "p", ("duty", "churn"), "rel")
        assert "duty=0.5,churn=0" in text.splitlines()[0]

    def test_missing_combination_renders_nan(self):
        rows = [{"r": 1, "c": 1, "v": 0.5}, {"r": 2, "c": 2, "v": 0.7}]
        text = pivot_table(rows, "r", "c", "v")
        assert "nan" in text

    def test_unknown_key_raises_with_known_columns(self):
        rows = [{"r": 1, "c": 1, "v": 0.5}]
        with pytest.raises(KeyError, match="known columns"):
            pivot_table(rows, "r", "c", "reliabilty")

    def test_empty_rows(self):
        assert pivot_table([], "r", "c", "v") == "(no rows)"


class TestExperimentPivot:
    def test_protocol_matrix_gets_a_pivot(self):
        from repro.harness.experiments import ExperimentResult
        from repro.harness.reporting import experiment_pivot
        result = ExperimentResult(
            experiment_id="protocol-matrix", title="t", parameters={},
            rows=[{"protocol": "frugal", "churn_per_min": 0.0,
                   "churn_reliability": 1.0},
                  {"protocol": "gossip", "churn_per_min": 0.0,
                   "churn_reliability": 0.9}])
        text = experiment_pivot(result)
        assert text is not None
        assert "churn_reliability by protocol" in text
        assert "frugal" in text and "gossip" in text

    def test_protocol_matrix_rendering_byte_identical(self):
        """Golden output from before pivot generalisation: the
        registered protocol-matrix pivot must render unchanged."""
        from repro.harness.experiments import ExperimentResult
        from repro.harness.reporting import experiment_pivot
        result = ExperimentResult(
            experiment_id="protocol-matrix", title="t", parameters={},
            rows=[{"protocol": "frugal", "churn_per_min": 0.0,
                   "churn_reliability": 1.0},
                  {"protocol": "gossip", "churn_per_min": 0.0,
                   "churn_reliability": 0.9}])
        assert experiment_pivot(result) == (
            "-- churn_reliability by protocol --\n"
            "protocol | churn_per_min=0\n"
            "---------+----------------\n"
            "  frugal |               1\n"
            "  gossip |             0.9")

    def test_unregistered_experiment_has_none(self):
        from repro.harness.experiments import ExperimentResult
        from repro.harness.reporting import experiment_pivot
        result = ExperimentResult(experiment_id="fig11", title="t",
                                  parameters={}, rows=[{"x": 1}])
        assert experiment_pivot(result) is None
