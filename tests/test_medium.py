"""Unit tests for the broadcast medium (repro.net.medium)."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.net.medium import MediumConfig, Transmission, WirelessMedium
from repro.net.messages import Heartbeat
from repro.net.radio import RadioConfig
from repro.sim.kernel import Simulator
from repro.sim.space import Vec2


class StubNode:
    """Minimal stationary node for medium tests."""

    def __init__(self, node_id: int, pos: Vec2):
        self.id = node_id
        self.pos = pos
        self.alive = True
        self.asleep = False
        self.silenced = False
        self.received: List = []

    @property
    def listening(self) -> bool:
        return self.alive and not self.asleep and not self.silenced

    def position(self) -> Vec2:
        return self.pos

    def receive(self, message) -> None:
        self.received.append(message)


def hb(sender: int) -> Heartbeat:
    return Heartbeat(sender=sender, subscriptions=frozenset())


def make_medium(sim, range_m=100.0, config=None, seed=0):
    return WirelessMedium(sim, RadioConfig(range_override_m=range_m),
                          config=config, rng=random.Random(seed))


class TestBroadcastLocality:
    def test_only_nodes_in_range_receive(self, sim):
        medium = make_medium(sim, range_m=100.0)
        sender = StubNode(0, Vec2(0, 0))
        near = StubNode(1, Vec2(50, 0))
        edge = StubNode(2, Vec2(100, 0))
        far = StubNode(3, Vec2(101, 0))
        for n in (sender, near, edge, far):
            medium.register(n)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert len(near.received) == 1
        assert len(edge.received) == 1      # boundary inclusive
        assert far.received == []
        assert sender.received == []        # no self-reception

    def test_rx_window_hook_may_unregister_mid_transmit(self, sim):
        """Charging an RX window can kill the receiver's battery, which
        unregisters it from the medium while _transmit is still walking
        the node table — that must not blow up the iteration."""
        medium = make_medium(sim, range_m=100.0)
        nodes = [StubNode(i, Vec2(10.0 * i, 0)) for i in range(4)]
        for n in nodes:
            medium.register(n)
        medium.on_rx_window = lambda nid, dur: medium.unregister(2)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert 2 not in medium.nodes
        assert len(nodes[1].received) == 1

    def test_duplicate_node_id_rejected(self, sim):
        medium = make_medium(sim)
        medium.register(StubNode(1, Vec2(0, 0)))
        with pytest.raises(ValueError):
            medium.register(StubNode(1, Vec2(5, 5)))

    def test_dead_receiver_gets_nothing(self, sim):
        medium = make_medium(sim)
        medium.register(StubNode(0, Vec2(0, 0)))
        dead = StubNode(1, Vec2(10, 0))
        dead.alive = False
        medium.register(dead)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert dead.received == []

    def test_dead_sender_sends_nothing(self, sim):
        medium = make_medium(sim)
        sender = StubNode(0, Vec2(0, 0))
        rx = StubNode(1, Vec2(10, 0))
        medium.register(sender)
        medium.register(rx)
        sender.alive = False
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert rx.received == []
        assert medium.frames_sent == 0

    def test_delivery_takes_airtime(self, sim):
        medium = make_medium(sim)
        medium.register(StubNode(0, Vec2(0, 0)))
        rx = StubNode(1, Vec2(10, 0))
        medium.register(rx)
        medium.broadcast(0, hb(0))
        # A 50-byte heartbeat at 1 Mbit/s: 192 us + 400 us air time.
        sim.run(until=1e-5)
        assert rx.received == []
        sim.run(until=1e-3)
        assert len(rx.received) == 1


class TestCollisions:
    def test_overlapping_frames_collide_at_receiver(self, sim):
        cfg = MediumConfig(csma_enabled=False)   # force the overlap
        medium = make_medium(sim, config=cfg)
        a = StubNode(0, Vec2(0, 0))
        b = StubNode(1, Vec2(120, 0))            # out of a's range
        victim = StubNode(2, Vec2(60, 0))        # hears both
        for n in (a, b, victim):
            medium.register(n)
        medium.broadcast(0, hb(0))
        medium.broadcast(1, hb(1))
        sim.run_until_idle()
        assert victim.received == []
        assert medium.frames_collided == 2

    def test_distant_transmitters_do_not_collide(self, sim):
        """Spatial reuse: two transmissions out of mutual range deliver."""
        cfg = MediumConfig(csma_enabled=False)
        medium = make_medium(sim, range_m=100.0, config=cfg)
        a = StubNode(0, Vec2(0, 0))
        ra = StubNode(1, Vec2(10, 0))
        b = StubNode(2, Vec2(1000, 0))
        rb = StubNode(3, Vec2(1010, 0))
        for n in (a, ra, b, rb):
            medium.register(n)
        medium.broadcast(0, hb(0))
        medium.broadcast(2, hb(2))
        sim.run_until_idle()
        assert len(ra.received) == 1
        assert len(rb.received) == 1

    def test_half_duplex_receiver_misses_while_transmitting(self, sim):
        cfg = MediumConfig(csma_enabled=False)
        medium = make_medium(sim, config=cfg)
        a = StubNode(0, Vec2(0, 0))
        b = StubNode(1, Vec2(50, 0))
        for n in (a, b):
            medium.register(n)
        medium.broadcast(0, hb(0))
        medium.broadcast(1, hb(1))   # b transmits while a's frame arrives
        sim.run_until_idle()
        assert b.received == []

    def test_collisions_can_be_disabled(self, sim):
        cfg = MediumConfig(csma_enabled=False, model_collisions=False)
        medium = make_medium(sim, config=cfg)
        a = StubNode(0, Vec2(0, 0))
        b = StubNode(1, Vec2(100, 0))
        victim = StubNode(2, Vec2(50, 0))
        for n in (a, b, victim):
            medium.register(n)
        medium.broadcast(0, hb(0))
        medium.broadcast(1, hb(1))
        sim.run_until_idle()
        assert len(victim.received) == 2


class TestCsma:
    def test_carrier_sense_defers_second_sender(self, sim):
        medium = make_medium(sim)    # CSMA on by default
        a = StubNode(0, Vec2(0, 0))
        b = StubNode(1, Vec2(50, 0))
        rx = StubNode(2, Vec2(25, 0))
        for n in (a, b, rx):
            medium.register(n)
        medium.broadcast(0, hb(0))
        # b wants to send while a's frame is in the air; CSMA defers it.
        sim.schedule(1e-4, medium.broadcast, 1, hb(1))
        sim.run_until_idle()
        assert len(rx.received) == 2
        assert medium.frames_collided == 0

    def test_hidden_terminal_still_collides(self, sim):
        """CSMA cannot save the classic hidden-terminal case."""
        medium = make_medium(sim, range_m=100.0)
        a = StubNode(0, Vec2(0, 0))
        b = StubNode(1, Vec2(200, 0))       # a and b cannot hear each other
        victim = StubNode(2, Vec2(100, 0))  # hears both
        for n in (a, b, victim):
            medium.register(n)
        medium.broadcast(0, hb(0))
        sim.schedule(1e-4, medium.broadcast, 1, hb(1))
        sim.run_until_idle()
        assert victim.received == []


class TestSelfSerialization:
    def test_back_to_back_sends_from_one_node_both_deliver(self, sim):
        """A half-duplex MAC serialises a node's own frames: two sends in
        the same instant must not corrupt each other (regression — the
        sender's own in-flight frame used to be excluded from carrier
        sense)."""
        medium = make_medium(sim)
        medium.register(StubNode(0, Vec2(0, 0)))
        rx = StubNode(1, Vec2(10, 0))
        medium.register(rx)
        medium.broadcast(0, hb(0))
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert len(rx.received) == 2
        assert medium.frames_collided == 0


class TestRandomLoss:
    def test_loss_probability_one_drops_everything(self, sim):
        cfg = MediumConfig(frame_loss_probability=1.0)
        medium = make_medium(sim, config=cfg)
        medium.register(StubNode(0, Vec2(0, 0)))
        rx = StubNode(1, Vec2(10, 0))
        medium.register(rx)
        for _ in range(5):
            medium.broadcast(0, hb(0))
            sim.run_until_idle()
        assert rx.received == []
        assert medium.frames_lost_random == 5

    def test_loss_probability_validated(self):
        with pytest.raises(ValueError):
            MediumConfig(frame_loss_probability=1.5)


class TestTransmission:
    def test_overlap_detection(self):
        a = Transmission(0, Vec2(0, 0), 100.0, start=0.0, end=1.0,
                         message=hb(0))
        b = Transmission(1, Vec2(0, 0), 100.0, start=0.5, end=1.5,
                         message=hb(1))
        c = Transmission(2, Vec2(0, 0), 100.0, start=1.0, end=2.0,
                         message=hb(2))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)           # touching, not overlapping

    def test_audibility(self):
        t = Transmission(0, Vec2(0, 0), 100.0, 0.0, 1.0, hb(0))
        assert t.audible_at(Vec2(100, 0))
        assert not t.audible_at(Vec2(100.1, 0))


class TestHooks:
    def test_observability_callbacks_fire(self, sim):
        medium = make_medium(sim)
        medium.register(StubNode(0, Vec2(0, 0)))
        medium.register(StubNode(1, Vec2(10, 0)))
        sent, received = [], []
        medium.on_transmit = lambda s, m, b: sent.append((s, b))
        medium.on_receive = lambda r, m: received.append(r)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert sent == [(0, 50)]
        assert received == [1]

    def test_unregister_removes_node(self, sim):
        medium = make_medium(sim)
        medium.register(StubNode(0, Vec2(0, 0)))
        rx = StubNode(1, Vec2(10, 0))
        medium.register(rx)
        medium.unregister(1)
        medium.broadcast(0, hb(0))
        sim.run_until_idle()
        assert rx.received == []
