"""Determinism suite for the sharded-world engine (repro.sim.shard).

The engine's contract mirrors the parallel runner's: splitting one world
into K spatial shards must change *nothing* — per-seed summaries at
K = 1, 2 and 4 are required to be exactly equal (``==`` on floats, not
approximately) on every scenario family, including energy- and
fault-instrumented ones; the spawn backend must reproduce the in-process
backend bit for bit; and sharded configs must compose with the ``--jobs``
pool and the on-disk result cache without perturbing a single digit.

Worlds here are sized so the partition is non-trivial: a 1300 m side
with a 150 m radio range gives 8 grid columns, hence 4 shards of 2
columns each — every frame near a stripe border genuinely crosses
shard boundaries through the epoch-barrier exchange.
"""

from __future__ import annotations

import pytest

from repro.energy import DutyCycleConfig, EnergyConfig, PowerProfile
from repro.faults import (ChurnConfig, FaultConfig, FaultEvent, FaultPlan,
                          LinkLossConfig, RegionalOutage)
from repro.harness.cache import ResultCache, config_digest
from repro.harness.experiments import ExperimentResult
from repro.harness.parallel import ParallelRunner
from repro.harness.reporting import to_csv
from repro.harness.scenario import (Publication, RandomWaypointSpec,
                                    ScenarioConfig, run_scenario)
from repro.net import RadioConfig
from repro.sim.shard import ShardConfig, resolve_epoch_s
from repro.sim.shard.engine import compute_ownership

SEEDS = [0, 1]
SHARD_COUNTS = [1, 2, 4]
#: The epoch-invariance ladder: every sound barrier spacing must yield
#: bit-identical results (0.1 is deliberately not binary-exact).
EPOCHS = [0.1, 0.25, 1.0]
#: The tile-shape ladder at K=4: horizontal bands, a grid, stripes.
PLANS = [(4, 4), (4, 2), (4, 1)]   # (shards, rows) = 4x1, 2x2, 1x4


def _rwp_frugal() -> ScenarioConfig:
    """Fig. 11 family, shrunk: frugal over random waypoint."""
    return ScenarioConfig(
        n_processes=20,
        mobility=RandomWaypointSpec(width=1300.0, height=1300.0,
                                    speed_min=10.0, speed_max=10.0),
        duration=30.0, warmup=4.0,
        radio=RadioConfig(range_override_m=150.0),
        subscriber_fraction=0.75,
        publications=(Publication(at=2.0, validity=25.0),))


def _rwp_flooding() -> ScenarioConfig:
    """Fig. 17 family: simple flooding, same world."""
    return _rwp_frugal().with_changes(protocol="simple-flooding")


def _rwp_energy() -> ScenarioConfig:
    """Energy-lifetime family: finite batteries, duty cycling, deaths."""
    return _rwp_frugal().with_changes(energy=EnergyConfig(
        profile=PowerProfile.power_save(),
        battery_capacity_j=8.0,
        duty_cycle=DutyCycleConfig.heartbeat_aligned(1.0, 0.5)))


def _rwp_faults() -> ScenarioConfig:
    """All four fault mechanisms at once: plan + churn + outage + loss."""
    return _rwp_frugal().with_changes(faults=FaultConfig(
        plan=FaultPlan((FaultEvent(at=5.0, kind="crash", fraction=0.25,
                                   duration=10.0),)),
        churn=ChurnConfig(mean_session_s=15.0, mean_rest_s=5.0,
                          fraction=0.5),
        outages=(RegionalOutage(at=8.0, duration=6.0,
                                center=(650.0, 650.0), radius_m=300.0),),
        loss=LinkLossConfig(link_loss_min=0.05, link_loss_max=0.15,
                            burst_rate_per_s=0.05,
                            burst_mean_duration_s=2.0,
                            burst_loss_probability=0.8)))


#: The K-invariance matrix: one config per scenario family tested by the
#: engine-equality suites elsewhere (figure, flooding, energy, faults).
MATRIX = {
    "rwp-frugal": _rwp_frugal,
    "rwp-flooding": _rwp_flooding,
    "rwp-energy-dutycycle": _rwp_energy,
    "rwp-churn-faults": _rwp_faults,
}


@pytest.fixture(autouse=True)
def _inproc_backend(monkeypatch):
    """Default every test to the deterministic in-process backend; the
    spawn test overrides this explicitly."""
    monkeypatch.setenv("REPRO_SHARD_BACKEND", "inproc")


class TestShardCountInvariance:
    @pytest.mark.parametrize("name", sorted(MATRIX))
    def test_summaries_bit_identical_across_k(self, name):
        config = MATRIX[name]()
        for seed in SEEDS:
            runs = [run_scenario(config.with_changes(seed=seed, shards=k))
                    for k in SHARD_COUNTS]
            want = runs[0]
            for k, got in zip(SHARD_COUNTS[1:], runs[1:]):
                # Exact float equality — the whole point of the engine.
                assert got.summary() == want.summary(), \
                    f"{name} seed {seed}: K={k} diverged from K=1"
                assert got.subscriber_ids == want.subscriber_ids
                assert got.per_event_reports() == want.per_event_reports()

    def test_partition_is_nontrivial(self):
        """The test world really splits: 4 shards, every one populated."""
        config = _rwp_frugal().with_changes(shards=4)
        owners, plan = compute_ownership(config)
        assert plan.shards == 4
        assert all(start < stop for start, stop in plan.columns)
        assert len(set(owners)) == 4

    def test_tiled_partition_is_nontrivial(self):
        """A 2x2 grid splits the same world along both axes."""
        config = _rwp_frugal().with_changes(
            shards=ShardConfig(shards=4, rows=2))
        owners, plan = compute_ownership(config)
        assert plan.rows == 2 and plan.cols == 2
        assert len(set(owners)) == 4


#: Families the epoch- and tile-invariance ladders cover (the ISSUE's
#: rwp-frugal / energy / churn-faults trio).
LADDER = {
    "rwp-frugal": _rwp_frugal,
    "rwp-energy-dutycycle": _rwp_energy,
    "rwp-churn-faults": _rwp_faults,
}


class TestEpochInvariance:
    """Barrier spacing must be unobservable: the retimed exchange makes
    every sound epoch — binary-exact or not — produce the identical
    result, which is what licenses ``epoch_s="auto"``."""

    @pytest.mark.parametrize("name", sorted(LADDER))
    def test_epoch_length_is_unobservable(self, name):
        config = LADDER[name]()
        for seed in SEEDS:
            runs = [run_scenario(config.with_changes(
                        seed=seed,
                        shards=ShardConfig(shards=2, epoch_s=epoch)))
                    for epoch in EPOCHS]
            want = runs[0]
            for epoch, got in zip(EPOCHS[1:], runs[1:]):
                assert got.summary() == want.summary(), \
                    f"{name} seed {seed}: epoch={epoch} diverged"
                assert got.per_event_reports() == want.per_event_reports()

    def test_auto_epoch_equals_its_resolved_value(self):
        config = _rwp_frugal()
        auto = ShardConfig(shards=2)
        resolved = resolve_epoch_s(auto, config.duration, config.warmup)
        assert resolved == 1.0   # min(latency 1.0, half the 34 s run)
        explicit = run_scenario(config.with_changes(
            shards=ShardConfig(shards=2, epoch_s=resolved)))
        automatic = run_scenario(config.with_changes(shards=auto))
        assert automatic.summary() == explicit.summary()

    def test_barrier_stats_are_attached(self):
        result = run_scenario(_rwp_frugal().with_changes(shards=2))
        stats = result.barrier_stats
        assert stats is not None
        assert stats["epoch_s"] == 1.0
        assert stats["barriers"] >= 34.0
        assert stats["frames_exchanged"] > 0
        for phase in ("drain_s", "merge_s", "ingest_s", "retime_s"):
            assert stats[phase] >= 0.0
        assert run_scenario(_rwp_frugal()).barrier_stats is None


class TestTileShapeInvariance:
    """Partition geometry must be unobservable: stripes, horizontal
    bands and grids of the same world agree bit for bit."""

    @pytest.mark.parametrize("name", sorted(LADDER))
    def test_plans_agree_bit_for_bit(self, name):
        config = LADDER[name]()
        for seed in SEEDS:
            runs = [run_scenario(config.with_changes(
                        seed=seed,
                        shards=ShardConfig(shards=shards, rows=rows)))
                    for shards, rows in PLANS]
            want = runs[0]
            for (shards, rows), got in zip(PLANS[1:], runs[1:]):
                assert got.summary() == want.summary(), \
                    f"{name} seed {seed}: plan {rows}x{shards // rows} " \
                    f"diverged"
                assert got.per_event_reports() == want.per_event_reports()

    def test_fault_timeline_survives_the_merge(self):
        result = run_scenario(_rwp_faults().with_changes(shards=2))
        summary = result.summary()
        for key in ("availability", "churn_reliability",
                    "recovery_latency_s", "downtime_s"):
            assert key in summary
        assert summary["availability"] < 1.0
        assert result.faults is not None
        assert result.faults.down_intervals

    def test_energy_fields_survive_the_merge(self):
        result = run_scenario(_rwp_energy().with_changes(shards=2))
        summary = result.summary()
        for key in ("joules_per_node", "joules_per_delivery",
                    "lifetime_s", "survivor_fraction"):
            assert key in summary


class TestSpawnBackend:
    def test_spawn_matches_inproc_exactly(self, monkeypatch):
        config = _rwp_frugal().with_changes(shards=2, duration=20.0)
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "inproc")
        inproc = run_scenario(config)
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "spawn")
        spawned = run_scenario(config)
        assert spawned.summary() == inproc.summary()
        assert spawned.per_event_reports() == inproc.per_event_reports()
        assert spawned.sim_events_processed == inproc.sim_events_processed

    def test_explicit_spawn_degrades_inside_daemonic_workers(
            self, monkeypatch):
        """A --jobs pool worker cannot fork shard children; even a
        forced spawn must fall back to the bit-identical inproc
        backend instead of crashing in multiprocessing."""
        from repro.sim.shard import engine as shard_engine

        class _DaemonProcess:
            daemon = True

        monkeypatch.setenv("REPRO_SHARD_BACKEND", "spawn")
        monkeypatch.setattr(shard_engine.multiprocessing,
                            "current_process", _DaemonProcess)
        assert shard_engine._select_backend(4) == "inproc"


class TestComposesWithEngine:
    """Sharding x (--jobs pool, result cache): still bit-identical."""

    def test_serial_equals_pooled_equals_cached(self, tmp_path):
        config = _rwp_frugal().with_changes(shards=2)
        serial = ParallelRunner(jobs=1).run_seeds(config, SEEDS)
        with ParallelRunner(jobs=2) as pool:
            fanned = pool.run_seeds(config, SEEDS)
        cache = ResultCache(tmp_path / "cache")
        warm = ParallelRunner(jobs=1, cache=cache)
        warm.run_seeds(config, SEEDS)
        replay = ParallelRunner(jobs=1, cache=cache)
        cached = replay.run_seeds(config, SEEDS)
        assert replay.stats.executed == 0, \
            "warm rerun must answer every cell from the cache"
        for ours, pooled, hit in zip(serial.results, fanned.results,
                                     cached.results):
            assert ours.summary() == pooled.summary()
            assert ours.summary() == hit.summary()

    def test_csv_byte_equal_across_execution_modes(self, tmp_path):
        """The CSV a sharded sweep writes is byte-for-byte identical
        whether the seeds ran serially or through the pool."""
        config = _rwp_frugal().with_changes(shards=2)

        def rows_via(runner) -> ExperimentResult:
            multi = runner.run_seeds(config, SEEDS)
            result = ExperimentResult(
                experiment_id="shard-csv", title="csv determinism",
                parameters={"shards": 2})
            summary = multi.summary()
            result.rows.append({
                "reliability": summary["reliability"].mean,
                "bandwidth_bytes": summary["bandwidth_bytes"].mean,
                "duplicates": summary["duplicates"].mean})
            return result

        serial_csv = tmp_path / "serial.csv"
        pooled_csv = tmp_path / "pooled.csv"
        to_csv(rows_via(ParallelRunner(jobs=1)), str(serial_csv))
        with ParallelRunner(jobs=2) as pool:
            to_csv(rows_via(pool), str(pooled_csv))
        assert serial_csv.read_bytes() == pooled_csv.read_bytes()

    def test_shard_count_is_part_of_the_cache_key(self):
        config = _rwp_frugal()
        digests = {config_digest(config.with_changes(shards=k),
                                 version="pinned")
                   for k in (0, 1, 2, 4)}
        assert len(digests) == 4, \
            "different shard counts must never share a cache entry"

    def test_tiled_explicit_epoch_serial_equals_pooled_equals_cached(
            self, tmp_path):
        """The full knob stack at once — a 2x2 grid with an explicit
        0.5 s epoch — through serial, pooled and cached execution."""
        config = _rwp_frugal().with_changes(
            shards=ShardConfig(shards=4, rows=2, epoch_s=0.5))
        serial = ParallelRunner(jobs=1).run_seeds(config, SEEDS)
        with ParallelRunner(jobs=2) as pool:
            fanned = pool.run_seeds(config, SEEDS)
        cache = ResultCache(tmp_path / "cache")
        ParallelRunner(jobs=1, cache=cache).run_seeds(config, SEEDS)
        replay = ParallelRunner(jobs=1, cache=cache)
        cached = replay.run_seeds(config, SEEDS)
        assert replay.stats.executed == 0
        stripes = ParallelRunner(jobs=1).run_seeds(
            _rwp_frugal().with_changes(shards=4), SEEDS)
        for ours, pooled, hit, striped in zip(
                serial.results, fanned.results, cached.results,
                stripes.results):
            assert ours.summary() == pooled.summary()
            assert ours.summary() == hit.summary()
            # ... and the grid agrees with plain stripes bit for bit.
            assert ours.summary() == striped.summary()

    def test_tiled_csv_byte_equal_across_execution_modes(self, tmp_path):
        config = _rwp_frugal().with_changes(
            shards=ShardConfig(shards=4, rows=2, epoch_s=0.5))

        def rows_via(runner) -> ExperimentResult:
            multi = runner.run_seeds(config, SEEDS)
            result = ExperimentResult(
                experiment_id="tile-csv", title="csv determinism",
                parameters={"shards": config.shards.plan_label})
            summary = multi.summary()
            result.rows.append({
                "reliability": summary["reliability"].mean,
                "bandwidth_bytes": summary["bandwidth_bytes"].mean,
                "duplicates": summary["duplicates"].mean})
            return result

        serial_csv = tmp_path / "serial.csv"
        pooled_csv = tmp_path / "pooled.csv"
        to_csv(rows_via(ParallelRunner(jobs=1)), str(serial_csv))
        with ParallelRunner(jobs=2) as pool:
            to_csv(rows_via(pool), str(pooled_csv))
        assert serial_csv.read_bytes() == pooled_csv.read_bytes()


class TestConfigValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            _rwp_frugal().with_changes(shards=-1)

    def test_zero_shards_means_classic_engine(self):
        config = _rwp_frugal()
        assert not config.shards
        assert config.shards.plan_label == "off"
        assert run_scenario(config).summary() == \
            run_scenario(config.with_changes(shards=0)).summary()

    def test_ints_coerce_to_stripe_plans(self):
        config = _rwp_frugal().with_changes(shards=4)
        assert config.shards == ShardConfig(shards=4)
        assert config.shards.plan_label == "1x4"
        with pytest.raises(ValueError):
            ShardConfig.coerce(True)   # bools are not shard counts

    def test_rows_must_divide_shards(self):
        with pytest.raises(ValueError):
            ShardConfig(shards=4, rows=3)

    def test_epoch_must_be_sound(self):
        with pytest.raises(ValueError):
            ShardConfig(shards=2, epoch_s=0.0)
        with pytest.raises(ValueError):
            ShardConfig(shards=2, epoch_s=1.5)   # > latency_s: unsound
        with pytest.raises(ValueError):
            ShardConfig(shards=2, epoch_s="soon")
        assert ShardConfig(shards=2, epoch_s=1.5, latency_s=2.0)

    def test_parse_accepts_counts_and_grids(self):
        assert ShardConfig.parse("4") == ShardConfig(shards=4)
        assert ShardConfig.parse("2x2") == ShardConfig(shards=4, rows=2)
        assert ShardConfig.parse("2x2", epoch=0.5) == \
            ShardConfig(shards=4, rows=2, epoch_s=0.5)
        for bad in ("", "x", "2x", "-1", "0x3", "two"):
            with pytest.raises(ValueError):
                ShardConfig.parse(bad)

    def test_auto_epoch_is_a_pure_function_of_the_config(self):
        shards = ShardConfig(shards=2)
        assert resolve_epoch_s(shards, 30.0, 4.0) == 1.0
        assert resolve_epoch_s(shards, 1.2, 0.0) == 0.5
        assert resolve_epoch_s(shards, 0.0, 0.0) == 2.0 ** -6
        explicit = ShardConfig(shards=2, epoch_s=0.25)
        assert resolve_epoch_s(explicit, 30.0, 4.0) == 0.25
